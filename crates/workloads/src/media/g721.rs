//! G.721-style 32 kbit/s ADPCM codec (MediaBench `g721encode` /
//! `g721decode`).
//!
//! G.721 uses a 4-bit adaptive quantiser with a logarithmic scale factor
//! and a two-pole/six-zero adaptive predictor. This kernel implements a
//! faithful simplification: the log-domain scale-factor adaptation with
//! the standard `W(I)` multiplier table and a six-tap FIR adaptive
//! predictor with sign-sign LMS updates — preserving the per-sample
//! table lookups and predictor-state traffic of the reference coder.

use crate::util::{checksum_region, Alloc, SplitMix64};
use crate::Scale;
use ehsim_mem::{Bus, Workload};

/// The G.721 scale-factor multiplier table `W(I)` (Q4).
const W_TABLE: [i16; 8] = [-12, 18, 41, 64, 112, 198, 355, 1122];

const TAPS: u32 = 6;

struct Layout {
    w_tab: u32,
    coeffs: u32,
    history: u32,
    input: u32,
    output: u32,
    total: u32,
}

fn layout(samples: u32, decode: bool) -> Layout {
    let mut a = Alloc::new();
    let w_tab = a.array(8 * 2);
    let coeffs = a.array(TAPS * 4);
    let history = a.array(TAPS * 4);
    let (input, output) = if decode {
        (a.array(samples), a.array(samples * 2))
    } else {
        (a.array(samples * 2), a.array(samples))
    };
    Layout {
        w_tab,
        coeffs,
        history,
        input,
        output,
        total: a.used(),
    }
}

fn init_state(bus: &mut dyn Bus, l: &Layout) {
    for (i, w) in W_TABLE.iter().enumerate() {
        bus.store_u16(l.w_tab + 2 * i as u32, *w as u16);
    }
    for i in 0..TAPS {
        bus.store_i32(l.coeffs + 4 * i, 0);
        bus.store_i32(l.history + 4 * i, 0);
    }
}

/// Scale factor in Q4 plus the adaptive predictor, all state in memory.
struct G721 {
    y: i32, // log scale factor, Q4
}

impl G721 {
    fn new() -> Self {
        Self { y: 80 }
    }

    /// FIR prediction from the in-memory history/coefficients.
    fn predict(&self, bus: &mut dyn Bus, l: &Layout) -> i32 {
        let mut acc = 0i64;
        for i in 0..TAPS {
            let c = i64::from(bus.load_i32(l.coeffs + 4 * i));
            let h = i64::from(bus.load_i32(l.history + 4 * i));
            acc += c * h;
            bus.compute(2);
        }
        (acc >> 14) as i32
    }

    /// Sign-sign LMS coefficient update + history shift.
    fn update(&mut self, bus: &mut dyn Bus, l: &Layout, err: i32, reconstructed: i32) {
        for i in 0..TAPS {
            let h = bus.load_i32(l.history + 4 * i);
            let c = bus.load_i32(l.coeffs + 4 * i);
            let step = if (err >= 0) == (h >= 0) { 12 } else { -12 };
            bus.store_i32(l.coeffs + 4 * i, (c + step).clamp(-(1 << 15), 1 << 15));
            bus.compute(3);
        }
        for i in (1..TAPS).rev() {
            let prev = bus.load_i32(l.history + 4 * (i - 1));
            bus.store_i32(l.history + 4 * i, prev);
        }
        bus.store_i32(l.history, reconstructed);
    }

    /// Quantises `diff` against the current step, returning the 4-bit
    /// code (sign + 3 magnitude bits).
    fn quantise(&self, diff: i32) -> u8 {
        let step = self.step();
        let mut mag = diff.unsigned_abs() as i32;
        let mut code = 0u8;
        for _ in 0..3 {
            code <<= 1;
            if mag >= step {
                code |= 1;
                mag -= step;
            }
        }
        if diff < 0 {
            code | 8
        } else {
            code
        }
    }

    fn dequantise(&self, code: u8) -> i32 {
        let step = self.step();
        let mag = i32::from(code & 7) * step + step / 2;
        if code & 8 != 0 {
            -mag
        } else {
            mag
        }
    }

    /// Linear step derived from the log scale factor (Q4 → linear).
    fn step(&self) -> i32 {
        let exp = (self.y >> 4).clamp(0, 14);
        let frac = self.y & 0xf;
        ((16 + frac) << exp) >> 6
    }

    /// Log scale-factor adaptation with the `W(I)` table.
    fn adapt(&mut self, bus: &mut dyn Bus, l: &Layout, code: u8) {
        let w = bus.load_u16(l.w_tab + 2 * u32::from(code & 7)) as i16;
        // y(k+1) = (1 − 2^−5)·y(k) + 2^−5·W(I)
        self.y += (i32::from(w) - self.y) >> 5;
        self.y = self.y.clamp(16, 1024);
        bus.compute(4);
    }
}

fn encode_one(g: &mut G721, bus: &mut dyn Bus, l: &Layout, sample: i16) -> u8 {
    let pred = g.predict(bus, l);
    let diff = i32::from(sample) - pred;
    let code = g.quantise(diff);
    let dq = g.dequantise(code);
    let recon = (pred + dq).clamp(-32768, 32767);
    g.update(bus, l, dq, recon);
    g.adapt(bus, l, code);
    bus.compute(6);
    code
}

fn decode_one(g: &mut G721, bus: &mut dyn Bus, l: &Layout, code: u8) -> i16 {
    let pred = g.predict(bus, l);
    let dq = g.dequantise(code);
    let recon = (pred + dq).clamp(-32768, 32767);
    g.update(bus, l, dq, recon);
    g.adapt(bus, l, code);
    bus.compute(4);
    recon as i16
}

macro_rules! g721_workload {
    ($name:ident, $label:literal, $decode:expr, $default:expr, $doc:literal) => {
        #[doc = $doc]
        #[derive(Debug, Clone)]
        pub struct $name {
            samples: u32,
        }

        impl $name {
            /// Codec over `samples` samples.
            ///
            /// # Panics
            ///
            /// Panics if `samples == 0`.
            pub fn new(samples: u32) -> Self {
                assert!(samples > 0);
                Self { samples }
            }

            /// Test-sized instance.
            pub fn small() -> Self {
                Self::new(1_200)
            }

            /// Instance for `scale`.
            pub fn with_scale(scale: Scale) -> Self {
                match scale {
                    Scale::Small => Self::small(),
                    Scale::Default => Self::new($default),
                }
            }
        }

        impl Workload for $name {
            fn name(&self) -> &str {
                $label
            }

            fn mem_bytes(&self) -> u32 {
                layout(self.samples, $decode).total
            }

            fn run(&self, bus: &mut dyn Bus) -> u64 {
                let l = layout(self.samples, $decode);
                init_state(bus, &l);
                let mut rng = SplitMix64::new(0x9721);
                if $decode {
                    // Produce a code stream with an encoder, reset, then
                    // decode it.
                    let mut g = G721::new();
                    for t in 0..self.samples {
                        let s = rng.pcm_sample(t);
                        let c = encode_one(&mut g, bus, &l, s);
                        bus.store_u8(l.input + t, c);
                    }
                    init_state(bus, &l);
                    let mut g = G721::new();
                    for t in 0..self.samples {
                        let c = bus.load_u8(l.input + t);
                        let s = decode_one(&mut g, bus, &l, c & 0xf);
                        bus.store_u16(l.output + 2 * t, s as u16);
                    }
                    checksum_region(bus, l.output, self.samples / 2)
                } else {
                    for t in 0..self.samples {
                        let s = rng.pcm_sample(t);
                        bus.store_u16(l.input + 2 * t, s as u16);
                    }
                    let mut g = G721::new();
                    for t in 0..self.samples {
                        let s = bus.load_u16(l.input + 2 * t) as i16;
                        let c = encode_one(&mut g, bus, &l, s);
                        bus.store_u8(l.output + t, c);
                    }
                    checksum_region(bus, l.output, self.samples / 4)
                }
            }
        }
    };
}

g721_workload!(
    G721Encode,
    "g721encode",
    false,
    40_000,
    "MediaBench `g721encode`: PCM → 4-bit G.721-style ADPCM."
);
g721_workload!(
    G721Decode,
    "g721decode",
    true,
    16_000,
    "MediaBench `g721decode`: 4-bit G.721-style ADPCM → PCM."
);

#[cfg(test)]
mod tests {
    use super::*;
    use crate::util::test_support::check_workload;
    use ehsim_mem::FunctionalMem;

    #[test]
    fn encode_properties() {
        check_workload(G721Encode::small(), G721Encode::with_scale(Scale::Default));
    }

    #[test]
    fn decode_properties() {
        check_workload(G721Decode::small(), G721Decode::with_scale(Scale::Default));
    }

    #[test]
    fn decoder_reconstruction_is_bounded() {
        let w = G721Decode::small();
        let mut mem = FunctionalMem::new(w.mem_bytes());
        let _ = w.run(&mut mem);
        let l = layout(1_200, true);
        for t in 0..200u32 {
            let s = mem.load_u16(l.output + 2 * t) as i16;
            assert_ne!(s, i16::MIN, "reconstruction pinned at the rail");
        }
    }

    #[test]
    fn scale_factor_stays_clamped() {
        let mut g = G721::new();
        let mut mem = FunctionalMem::new(4096);
        let l = layout(4, false);
        init_state(&mut mem, &l);
        for c in 0..16u8 {
            for _ in 0..200 {
                g.adapt(&mut mem, &l, c);
            }
            assert!((16..=1024).contains(&g.y));
        }
    }
}
