//! Baseline JPEG block pipeline (MediaBench `jpegencode` /
//! `jpegdecode`).
//!
//! The hot path of a baseline JPEG codec is per-8×8-block: forward DCT →
//! quantisation → zigzag (encode) and dezigzag → dequantisation →
//! inverse DCT (decode). This kernel implements the integer (AAN-style
//! separable) DCT/IDCT, the standard luminance quantisation table and
//! the zigzag order over simulated memory, block by block across an
//! image.

use crate::util::{checksum_region, Alloc, SplitMix64};
use crate::Scale;
use ehsim_mem::{Bus, Workload};

/// The standard JPEG luminance quantisation table, quality ~50.
const QUANT: [u8; 64] = [
    16, 11, 10, 16, 24, 40, 51, 61, 12, 12, 14, 19, 26, 58, 60, 55, 14, 13, 16, 24, 40, 57, 69, 56,
    14, 17, 22, 29, 51, 87, 80, 62, 18, 22, 37, 56, 68, 109, 103, 77, 24, 35, 55, 64, 81, 104, 113,
    92, 49, 64, 78, 87, 103, 121, 120, 101, 72, 92, 95, 98, 112, 100, 103, 99,
];

/// The zigzag scan order.
const ZIGZAG: [u8; 64] = [
    0, 1, 8, 16, 9, 2, 3, 10, 17, 24, 32, 25, 18, 11, 4, 5, 12, 19, 26, 33, 40, 48, 41, 34, 27, 20,
    13, 6, 7, 14, 21, 28, 35, 42, 49, 56, 57, 50, 43, 36, 29, 22, 15, 23, 30, 37, 44, 51, 58, 59,
    52, 45, 38, 31, 39, 46, 53, 60, 61, 54, 47, 55, 62, 63,
];

struct Layout {
    quant: u32,
    zigzag: u32,
    image: u32,
    coeffs: u32,
    total: u32,
}

fn layout(blocks: u32) -> Layout {
    let mut a = Alloc::new();
    let quant = a.array(64);
    let zigzag = a.array(64);
    let image = a.array(blocks * 64 * 2);
    let coeffs = a.array(blocks * 64 * 2);
    Layout {
        quant,
        zigzag,
        image,
        coeffs,
        total: a.used(),
    }
}

fn init_tables(bus: &mut dyn Bus, l: &Layout) {
    for i in 0..64u32 {
        bus.store_u8(l.quant + i, QUANT[i as usize]);
        bus.store_u8(l.zigzag + i, ZIGZAG[i as usize]);
    }
}

/// One-dimensional 8-point integer DCT pass (in-place over `v`),
/// a butterfly structure like the AAN fast DCT.
fn dct8(v: &mut [i32; 8], inverse: bool) {
    const C1: i32 = 251; // cos(pi/16) * 256
    const C2: i32 = 237;
    const C3: i32 = 213;

    if !inverse {
        let (s07, d07) = (v[0] + v[7], v[0] - v[7]);
        let (s16, d16) = (v[1] + v[6], v[1] - v[6]);
        let (s25, d25) = (v[2] + v[5], v[2] - v[5]);
        let (s34, d34) = (v[3] + v[4], v[3] - v[4]);
        v[0] = s07 + s34 + s16 + s25;
        v[4] = s07 + s34 - s16 - s25;
        v[2] = ((s07 - s34) * C2 + (s16 - s25) * 98) >> 8;
        v[6] = ((s07 - s34) * 98 - (s16 - s25) * C2) >> 8;
        v[1] = (d07 * C1 + d16 * C3 + d25 * 142 + d34 * 50) >> 8;
        v[3] = (d07 * C3 - d16 * 50 - d25 * C1 - d34 * 142) >> 8;
        v[5] = (d07 * 142 - d16 * C1 + d25 * 50 + d34 * C3) >> 8;
        v[7] = (d07 * 50 - d16 * 142 + d25 * C3 - d34 * C1) >> 8;
    } else {
        let e0 = v[0] + v[4];
        let e1 = v[0] - v[4];
        let e2 = (v[2] * C2 + v[6] * 98) >> 8;
        let e3 = (v[2] * 98 - v[6] * C2) >> 8;
        let o0 = (v[1] * C1 + v[3] * C3 + v[5] * 142 + v[7] * 50) >> 8;
        let o1 = (v[1] * C3 - v[3] * 50 - v[5] * C1 - v[7] * 142) >> 8;
        let o2 = (v[1] * 142 - v[3] * C1 + v[5] * 50 + v[7] * C3) >> 8;
        let o3 = (v[1] * 50 - v[3] * 142 + v[5] * C3 - v[7] * C1) >> 8;
        v[0] = (e0 + e2 + o0) >> 2;
        v[7] = (e0 + e2 - o0) >> 2;
        v[1] = (e1 + e3 + o1) >> 2;
        v[6] = (e1 + e3 - o1) >> 2;
        v[2] = (e1 - e3 + o2) >> 2;
        v[5] = (e1 - e3 - o2) >> 2;
        v[3] = (e0 - e2 + o3) >> 2;
        v[4] = (e0 - e2 - o3) >> 2;
    }
}

/// Loads an 8×8 block (i16) from `base`, runs the separable 2-D
/// (I)DCT, and stores it back.
fn dct2d(bus: &mut dyn Bus, base: u32, inverse: bool) {
    let mut block = [[0i32; 8]; 8];
    for (y, row) in block.iter_mut().enumerate() {
        for (x, cell) in row.iter_mut().enumerate() {
            *cell = bus.load_u16(base + 2 * (y as u32 * 8 + x as u32)) as i16 as i32;
        }
    }
    for row in block.iter_mut() {
        dct8(row, inverse);
        bus.compute(40);
    }
    // Column-major walk over the row-major block; an iterator cannot
    // express the strided access, hence the index loop.
    #[allow(clippy::needless_range_loop)]
    for x in 0..8 {
        let mut col = [0i32; 8];
        for (y, c) in col.iter_mut().enumerate() {
            *c = block[y][x];
        }
        dct8(&mut col, inverse);
        bus.compute(40);
        for (y, c) in col.iter().enumerate() {
            block[y][x] = *c;
        }
    }
    for (y, row) in block.iter().enumerate() {
        for (x, cell) in row.iter().enumerate() {
            let v = (*cell).clamp(-32768, 32767);
            bus.store_u16(base + 2 * (y as u32 * 8 + x as u32), v as u16);
        }
    }
}

macro_rules! jpeg_workload {
    ($name:ident, $label:literal, $encode:expr, $doc:literal) => {
        #[doc = $doc]
        #[derive(Debug, Clone)]
        pub struct $name {
            blocks: u32,
        }

        impl $name {
            /// Pipeline over `blocks` 8×8 blocks.
            ///
            /// # Panics
            ///
            /// Panics if `blocks == 0`.
            pub fn new(blocks: u32) -> Self {
                assert!(blocks > 0);
                Self { blocks }
            }

            /// Test-sized instance.
            pub fn small() -> Self {
                Self::new(12)
            }

            /// Instance for `scale`.
            pub fn with_scale(scale: Scale) -> Self {
                match scale {
                    Scale::Small => Self::small(),
                    Scale::Default => Self::new(1_000),
                }
            }
        }

        impl Workload for $name {
            fn name(&self) -> &str {
                $label
            }

            fn mem_bytes(&self) -> u32 {
                layout(self.blocks).total
            }

            fn run(&self, bus: &mut dyn Bus) -> u64 {
                let l = layout(self.blocks);
                init_tables(bus, &l);
                let mut rng = SplitMix64::new(0x11fe6);
                // Synthesise pixel blocks (smooth gradient + noise).
                for b in 0..self.blocks {
                    for i in 0..64u32 {
                        let (x, y) = (i % 8, i / 8);
                        let v =
                            ((x * 13 + y * 7 + b) % 200) as i32 - 100 + (rng.next_u32() & 7) as i32;
                        bus.store_u16(l.image + 2 * (b * 64 + i), v as u16);
                    }
                }

                for b in 0..self.blocks {
                    let img = l.image + 2 * b * 64;
                    let coef = l.coeffs + 2 * b * 64;
                    if $encode {
                        dct2d(bus, img, false);
                        // Quantise + zigzag into the coefficient plane.
                        for i in 0..64u32 {
                            let zz = u32::from(bus.load_u8(l.zigzag + i));
                            let q = i32::from(bus.load_u8(l.quant + zz));
                            let c = bus.load_u16(img + 2 * zz) as i16 as i32;
                            bus.store_u16(coef + 2 * i, ((c / q) & 0xffff) as u16);
                            bus.compute(4);
                        }
                    } else {
                        // Dezigzag + dequantise pseudo-coefficients,
                        // then inverse transform.
                        for i in 0..64u32 {
                            let zz = u32::from(bus.load_u8(l.zigzag + i));
                            let q = i32::from(bus.load_u8(l.quant + zz));
                            let c = bus.load_u16(img + 2 * i) as i16 as i32 / 16;
                            bus.store_u16(coef + 2 * zz, ((c * q) & 0xffff) as u16);
                            bus.compute(4);
                        }
                        dct2d(bus, coef, true);
                    }
                }
                checksum_region(bus, l.coeffs, self.blocks * 32)
            }
        }
    };
}

jpeg_workload!(
    JpegEncode,
    "jpegencode",
    true,
    "MediaBench `jpegencode`: forward DCT + quantisation + zigzag."
);
jpeg_workload!(
    JpegDecode,
    "jpegdecode",
    false,
    "MediaBench `jpegdecode`: dezigzag + dequantisation + inverse DCT."
);

#[cfg(test)]
mod tests {
    use super::*;
    use crate::util::test_support::check_workload;

    #[test]
    fn encode_properties() {
        check_workload(JpegEncode::small(), JpegEncode::with_scale(Scale::Default));
    }

    #[test]
    fn decode_properties() {
        check_workload(JpegDecode::small(), JpegDecode::with_scale(Scale::Default));
    }

    #[test]
    fn zigzag_is_a_permutation() {
        let mut seen = [false; 64];
        for z in ZIGZAG {
            assert!(!seen[z as usize]);
            seen[z as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn dct_roundtrip_preserves_dc_energy() {
        // A constant block transforms to a DC-dominated spectrum and
        // back to roughly the same constant.
        let mut v = [100i32; 8];
        dct8(&mut v, false);
        assert!(v[0] > 0, "DC term positive");
        assert!(v[1].abs() < v[0]);
        dct8(&mut v, true);
        for x in v {
            assert!((x - 100).abs() <= 110, "got {x}");
        }
    }
}
