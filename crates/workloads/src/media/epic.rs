//! EPIC-style image pyramid coder (MediaBench `epic`).
//!
//! EPIC compresses images with a wavelet pyramid followed by scalar
//! quantisation and run-length coding. This kernel performs a 2-D Haar
//! wavelet transform (the same separable row/column pass structure as
//! EPIC's QMF pyramid, and the same strided-column access pattern that
//! stresses the cache), three pyramid levels deep, then quantises and
//! run-length counts the coefficients.

use crate::util::{checksum_region, Alloc, SplitMix64};
use crate::Scale;
use ehsim_mem::{Bus, Workload};

/// MediaBench `epic`.
#[derive(Debug, Clone)]
pub struct Epic {
    /// Image is `dim × dim` 16-bit pixels; `dim` must be a power of two
    /// ≥ 8.
    dim: u32,
    levels: u32,
}

impl Epic {
    /// Coder over a `dim × dim` image with `levels` pyramid levels.
    ///
    /// # Panics
    ///
    /// Panics unless `dim` is a power of two ≥ 8 and
    /// `dim >> levels >= 4`.
    pub fn new(dim: u32, levels: u32) -> Self {
        assert!(dim.is_power_of_two() && dim >= 8);
        assert!(dim >> levels >= 4);
        Self { dim, levels }
    }

    /// Test-sized instance (32×32, 2 levels).
    pub fn small() -> Self {
        Self::new(32, 2)
    }

    /// Instance for `scale`.
    pub fn with_scale(scale: Scale) -> Self {
        match scale {
            Scale::Small => Self::small(),
            Scale::Default => Self::new(128, 3),
        }
    }

    fn px(&self, base: u32, x: u32, y: u32) -> u32 {
        base + 2 * (y * self.dim + x)
    }
}

impl Workload for Epic {
    fn name(&self) -> &str {
        "epic"
    }

    fn mem_bytes(&self) -> u32 {
        let mut a = Alloc::new();
        let _img = a.array(self.dim * self.dim * 2);
        let _tmp = a.array(self.dim * 2);
        let _rle = a.array(self.dim * self.dim / 4);
        a.used()
    }

    fn run(&self, bus: &mut dyn Bus) -> u64 {
        let mut a = Alloc::new();
        let img = a.array(self.dim * self.dim * 2);
        let tmp = a.array(self.dim * 2);
        let rle = a.array(self.dim * self.dim / 4);

        // Synthesise a smooth image with texture (so wavelet
        // coefficients have realistic sparsity).
        let mut rng = SplitMix64::new(0xe91c);
        for y in 0..self.dim {
            for x in 0..self.dim {
                let v = ((x * 7 + y * 3) % 251) as i32 + ((rng.next_u32() & 15) as i32) - 8;
                bus.store_u16(self.px(img, x, y), v as u16);
                bus.compute(2);
            }
        }

        // Haar pyramid: rows then columns, halving extent per level.
        let mut extent = self.dim;
        for _ in 0..self.levels {
            // Row pass.
            for y in 0..extent {
                for x in 0..extent / 2 {
                    let a0 = bus.load_u16(self.px(img, 2 * x, y)) as i16 as i32;
                    let b0 = bus.load_u16(self.px(img, 2 * x + 1, y)) as i16 as i32;
                    bus.store_u16(tmp + 2 * x, (((a0 + b0) >> 1) & 0xffff) as u16);
                    bus.store_u16(tmp + 2 * (extent / 2 + x), ((a0 - b0) & 0xffff) as u16);
                    bus.compute(4);
                }
                for x in 0..extent {
                    let v = bus.load_u16(tmp + 2 * x);
                    bus.store_u16(self.px(img, x, y), v);
                }
            }
            // Column pass (strided by a full row: the cache-hostile
            // access EPIC is known for).
            for x in 0..extent {
                for y in 0..extent / 2 {
                    let a0 = bus.load_u16(self.px(img, x, 2 * y)) as i16 as i32;
                    let b0 = bus.load_u16(self.px(img, x, 2 * y + 1)) as i16 as i32;
                    bus.store_u16(tmp + 2 * y, (((a0 + b0) >> 1) & 0xffff) as u16);
                    bus.store_u16(tmp + 2 * (extent / 2 + y), ((a0 - b0) & 0xffff) as u16);
                    bus.compute(4);
                }
                for y in 0..extent {
                    let v = bus.load_u16(tmp + 2 * y);
                    bus.store_u16(self.px(img, x, y), v);
                }
            }
            extent /= 2;
        }

        // Quantise + run-length count zero runs into the RLE buffer.
        let mut run: u32 = 0;
        let mut out_ix: u32 = 0;
        let rle_cap = self.dim * self.dim / 16;
        for y in 0..self.dim {
            for x in 0..self.dim {
                let c = bus.load_u16(self.px(img, x, y)) as i16 as i32;
                let q = c / 8;
                bus.compute(2);
                if q == 0 {
                    run += 1;
                } else {
                    if out_ix < rle_cap {
                        bus.store_u32(rle + 4 * out_ix, (run << 8) | (q as u32 & 0xff));
                        out_ix += 1;
                    }
                    run = 0;
                }
            }
        }
        checksum_region(bus, rle, out_ix.min(rle_cap)) ^ u64::from(out_ix)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::util::test_support::check_workload;

    #[test]
    fn epic_properties() {
        check_workload(Epic::small(), Epic::with_scale(Scale::Default));
    }

    #[test]
    #[should_panic]
    fn too_many_levels_rejected() {
        let _ = Epic::new(16, 3);
    }
}
