//! GSM 06.10 full-rate style codec (MediaBench `gsmencode` /
//! `gsmdecode`).
//!
//! GSM-FR processes 160-sample frames through short-term LPC analysis
//! (autocorrelation → reflection coefficients via Schur recursion) and
//! long-term prediction (a lag search over the previous 120 samples —
//! the codec's hottest loop). This kernel implements both stages in
//! fixed point over simulated memory: the LTP search's sliding-window
//! loads dominate, exactly as in the reference encoder.

use crate::util::{checksum_region, Alloc, SplitMix64};
use crate::Scale;
use ehsim_mem::{Bus, Workload};

const FRAME: u32 = 160;
const SUBFRAME: u32 = 40;
const LAG_MIN: u32 = 40;
const LAG_MAX: u32 = 120;
const ORDER: usize = 8;

struct Layout {
    input: u32,
    history: u32,
    output: u32,
    total: u32,
}

fn layout(frames: u32) -> Layout {
    let mut a = Alloc::new();
    let input = a.array(frames * FRAME * 2);
    let history = a.array((LAG_MAX + FRAME) * 2);
    let output = a.array(frames * (ORDER as u32 * 2 + (FRAME / SUBFRAME) * 4));
    Layout {
        input,
        history,
        output,
        total: a.used(),
    }
}

/// Autocorrelation of one frame (lags 0..ORDER), fixed point.
fn autocorrelate(bus: &mut dyn Bus, base: u32, acf: &mut [i64; ORDER + 1]) {
    for (lag, slot) in acf.iter_mut().enumerate() {
        let mut acc = 0i64;
        for n in lag as u32..FRAME {
            let a = bus.load_u16(base + 2 * n) as i16 as i64;
            let b = bus.load_u16(base + 2 * (n - lag as u32)) as i16 as i64;
            acc += (a * b) >> 8;
            bus.compute(2);
        }
        *slot = acc;
    }
}

/// Schur recursion: autocorrelation → reflection coefficients (Q12).
fn schur(acf: &[i64; ORDER + 1], refl: &mut [i32; ORDER]) {
    if acf[0] == 0 {
        refl.fill(0);
        return;
    }
    let mut p = [0i64; ORDER + 1];
    let mut k = [0i64; ORDER + 1];
    p.copy_from_slice(acf);
    k[..ORDER].copy_from_slice(&acf[1..]);
    for i in 0..ORDER {
        if p[0] == 0 {
            refl[i..].iter_mut().for_each(|r| *r = 0);
            break;
        }
        let r = -((k[0] << 12) / p[0].max(1));
        refl[i] = r.clamp(-4095, 4095) as i32;
        let ri = i64::from(refl[i]);
        for j in 0..ORDER - i {
            let kj = k[j];
            let pj1 = p[j + 1];
            p[j + 1] = pj1 + ((ri * kj) >> 12);
            if j + 1 < ORDER - i {
                k[j] = k[j + 1] + ((ri * pj1) >> 12);
            }
        }
        p[0] += (ri * k[0]) >> 12;
    }
}

/// LTP lag search: best cross-correlation lag in `[LAG_MIN, LAG_MAX)`.
fn ltp_search(bus: &mut dyn Bus, l: &Layout, sub_base: u32) -> (u32, i32) {
    let mut best_lag = LAG_MIN;
    let mut best_score = i64::MIN;
    for lag in LAG_MIN..LAG_MAX {
        let mut score = 0i64;
        for n in 0..SUBFRAME {
            let cur = bus.load_u16(sub_base + 2 * n) as i16 as i64;
            let past = bus.load_u16(l.history + 2 * (LAG_MAX + n - lag)) as i16 as i64;
            score += (cur * past) >> 6;
            bus.compute(2);
        }
        if score > best_score {
            best_score = score;
            best_lag = lag;
        }
        bus.compute(2);
    }
    (best_lag, (best_score >> 16) as i32)
}

fn run_codec(bus: &mut dyn Bus, frames: u32, decode: bool, seed: u64) -> u64 {
    let l = layout(frames);
    let mut rng = SplitMix64::new(seed);
    for t in 0..frames * FRAME {
        bus.store_u16(l.input + 2 * t, rng.pcm_sample(t) as u16);
    }
    for i in 0..LAG_MAX + FRAME {
        bus.store_u16(l.history + 2 * i, 0);
    }

    let mut out = l.output;
    for f in 0..frames {
        let frame_base = l.input + 2 * f * FRAME;
        let mut acf = [0i64; ORDER + 1];
        autocorrelate(bus, frame_base, &mut acf);
        let mut refl = [0i32; ORDER];
        schur(&acf, &mut refl);
        bus.compute(ORDER as u64 * ORDER as u64);
        for r in refl {
            bus.store_u16(out, (r & 0xffff) as u16);
            out += 2;
        }
        for s in 0..FRAME / SUBFRAME {
            let sub_base = frame_base + 2 * s * SUBFRAME;
            let (lag, gain) = ltp_search(bus, &l, sub_base);
            bus.store_u32(out, (lag << 16) | (gain as u32 & 0xffff));
            out += 4;
            // Decoder side: long-term synthesis — reconstruct the
            // subframe from the lagged history plus residual.
            if decode {
                for n in 0..SUBFRAME {
                    let past = bus.load_u16(l.history + 2 * (LAG_MAX + n - lag)) as i16 as i32;
                    let res = bus.load_u16(sub_base + 2 * n) as i16 as i32;
                    let synth = (past * 3 / 4 + res / 4).clamp(-32768, 32767);
                    bus.store_u16(sub_base + 2 * n, synth as u16);
                    bus.compute(3);
                }
            }
            // Slide the history window forward by one subframe.
            for n in 0..LAG_MAX {
                let v = if n < LAG_MAX - SUBFRAME {
                    bus.load_u16(l.history + 2 * (n + SUBFRAME))
                } else {
                    bus.load_u16(sub_base + 2 * (n - (LAG_MAX - SUBFRAME)))
                };
                bus.store_u16(l.history + 2 * n, v);
            }
        }
    }
    let out_words = (out - l.output) / 4;
    checksum_region(bus, l.output, out_words)
}

macro_rules! gsm_workload {
    ($name:ident, $label:literal, $decode:expr, $seed:expr, $doc:literal) => {
        #[doc = $doc]
        #[derive(Debug, Clone)]
        pub struct $name {
            frames: u32,
        }

        impl $name {
            /// Codec over `frames` 160-sample frames.
            ///
            /// # Panics
            ///
            /// Panics if `frames == 0`.
            pub fn new(frames: u32) -> Self {
                assert!(frames > 0);
                Self { frames }
            }

            /// Test-sized instance.
            pub fn small() -> Self {
                Self::new(2)
            }

            /// Instance for `scale`.
            pub fn with_scale(scale: Scale) -> Self {
                match scale {
                    Scale::Small => Self::small(),
                    Scale::Default => Self::new(40),
                }
            }
        }

        impl Workload for $name {
            fn name(&self) -> &str {
                $label
            }

            fn mem_bytes(&self) -> u32 {
                layout(self.frames).total
            }

            fn run(&self, bus: &mut dyn Bus) -> u64 {
                run_codec(bus, self.frames, $decode, $seed)
            }
        }
    };
}

gsm_workload!(
    GsmEncode,
    "gsmencode",
    false,
    0x95e,
    "MediaBench `gsmencode`: LPC analysis + LTP lag search per frame."
);
gsm_workload!(
    GsmDecode,
    "gsmdecode",
    true,
    0x95d,
    "MediaBench `gsmdecode`: LPC analysis + long-term synthesis."
);

#[cfg(test)]
mod tests {
    use super::*;
    use crate::util::test_support::check_workload;

    #[test]
    fn encode_properties() {
        check_workload(GsmEncode::small(), GsmEncode::with_scale(Scale::Default));
    }

    #[test]
    fn decode_properties() {
        check_workload(GsmDecode::small(), GsmDecode::with_scale(Scale::Default));
    }

    #[test]
    fn schur_of_impulse_is_zeroish() {
        let mut acf = [0i64; ORDER + 1];
        acf[0] = 1 << 20;
        let mut refl = [0i32; ORDER];
        schur(&acf, &mut refl);
        assert!(refl.iter().all(|&r| r == 0));
    }

    #[test]
    fn schur_handles_zero_energy() {
        let acf = [0i64; ORDER + 1];
        let mut refl = [7i32; ORDER];
        schur(&acf, &mut refl);
        assert_eq!(refl, [0; ORDER]);
    }
}
