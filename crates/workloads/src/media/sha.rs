//! SHA-1 (MediaBench/MiBench `sha`).
//!
//! A complete, standard SHA-1 over a generated message buffer in
//! simulated memory — load-heavy (one pass over the message, 16 word
//! loads per 64-byte block) and store-light (the 20-byte digest),
//! making it the most write-through-friendly kernel in the suite.

use crate::util::{Alloc, Checksum, SplitMix64};
use crate::Scale;
use ehsim_mem::{Bus, Workload};

/// MediaBench `sha`.
#[derive(Debug, Clone)]
pub struct Sha {
    message_bytes: u32,
}

impl Sha {
    /// Hashes a `message_bytes`-byte message (must be a positive
    /// multiple of 64; real padding is applied to a final synthetic
    /// length block).
    ///
    /// # Panics
    ///
    /// Panics unless `message_bytes` is a positive multiple of 64.
    pub fn new(message_bytes: u32) -> Self {
        assert!(message_bytes > 0 && message_bytes.is_multiple_of(64));
        Self { message_bytes }
    }

    /// Test-sized instance.
    pub fn small() -> Self {
        Self::new(4 * 1024)
    }

    /// Instance for `scale`.
    pub fn with_scale(scale: Scale) -> Self {
        match scale {
            Scale::Small => Self::small(),
            Scale::Default => Self::new(384 * 1024),
        }
    }
}

fn rotl(x: u32, n: u32) -> u32 {
    x.rotate_left(n)
}

/// One SHA-1 compression round over the 64-byte block at `base`.
fn compress(bus: &mut dyn Bus, base: u32, h: &mut [u32; 5]) {
    let mut w = [0u32; 80];
    for (t, slot) in w.iter_mut().take(16).enumerate() {
        // SHA-1 is big-endian; swap on load.
        *slot = bus.load_u32(base + 4 * t as u32).swap_bytes();
    }
    for t in 16..80 {
        w[t] = rotl(w[t - 3] ^ w[t - 8] ^ w[t - 14] ^ w[t - 16], 1);
    }
    bus.compute(80);

    let (mut a, mut b, mut c, mut d, mut e) = (h[0], h[1], h[2], h[3], h[4]);
    for (t, &wt) in w.iter().enumerate() {
        let (f, k) = match t / 20 {
            0 => ((b & c) | ((!b) & d), 0x5a82_7999),
            1 => (b ^ c ^ d, 0x6ed9_eba1),
            2 => ((b & c) | (b & d) | (c & d), 0x8f1b_bcdc),
            _ => (b ^ c ^ d, 0xca62_c1d6),
        };
        let tmp = rotl(a, 5)
            .wrapping_add(f)
            .wrapping_add(e)
            .wrapping_add(k)
            .wrapping_add(wt);
        e = d;
        d = c;
        c = rotl(b, 30);
        b = a;
        a = tmp;
    }
    bus.compute(80 * 6);
    h[0] = h[0].wrapping_add(a);
    h[1] = h[1].wrapping_add(b);
    h[2] = h[2].wrapping_add(c);
    h[3] = h[3].wrapping_add(d);
    h[4] = h[4].wrapping_add(e);
}

impl Workload for Sha {
    fn name(&self) -> &str {
        "sha"
    }

    fn mem_bytes(&self) -> u32 {
        let mut a = Alloc::new();
        let _msg = a.array(self.message_bytes + 64);
        let _digest = a.array(20);
        a.used()
    }

    fn run(&self, bus: &mut dyn Bus) -> u64 {
        let mut alloc = Alloc::new();
        let msg = alloc.array(self.message_bytes + 64);
        let digest = alloc.array(20);

        let mut rng = SplitMix64::new(0x54a1);
        for i in 0..self.message_bytes / 4 {
            bus.store_u32(msg + 4 * i, rng.next_u32());
        }
        // Standard padding block: 0x80, zeros, 64-bit big-endian length.
        bus.store_u8(msg + self.message_bytes, 0x80);
        for i in 1..56 {
            bus.store_u8(msg + self.message_bytes + i, 0);
        }
        let bit_len = u64::from(self.message_bytes) * 8;
        bus.store_u64(msg + self.message_bytes + 56, bit_len.swap_bytes());

        let mut h = [
            0x6745_2301u32,
            0xefcd_ab89,
            0x98ba_dcfe,
            0x1032_5476,
            0xc3d2_e1f0,
        ];
        let blocks = self.message_bytes / 64 + 1;
        for b in 0..blocks {
            compress(bus, msg + 64 * b, &mut h);
        }
        for (i, word) in h.iter().enumerate() {
            bus.store_u32(digest + 4 * i as u32, *word);
        }

        let mut c = Checksum::new();
        for i in 0..5u32 {
            c.push(u64::from(bus.load_u32(digest + 4 * i)));
        }
        c.value()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::util::test_support::check_workload;
    use ehsim_mem::FunctionalMem;

    #[test]
    fn sha_properties() {
        check_workload(Sha::small(), Sha::with_scale(Scale::Default));
    }

    #[test]
    fn matches_reference_vector_for_abc_block() {
        // Known-answer test: SHA-1("abc") = a9993e36 4706816a ba3e2571
        // 7850c26c 9cd0d89d. Build the padded block by hand.
        let mut mem = FunctionalMem::new(128);
        mem.store_u8(0, b'a');
        mem.store_u8(1, b'b');
        mem.store_u8(2, b'c');
        mem.store_u8(3, 0x80);
        for i in 4..62 {
            mem.store_u8(i, 0);
        }
        mem.store_u8(62, 0);
        mem.store_u8(63, 24); // bit length 24, big-endian u64 tail
        let mut h = [
            0x6745_2301u32,
            0xefcd_ab89,
            0x98ba_dcfe,
            0x1032_5476,
            0xc3d2_e1f0,
        ];
        compress(&mut mem, 0, &mut h);
        assert_eq!(
            h,
            [
                0xa999_3e36,
                0x4706_816a,
                0xba3e_2571,
                0x7850_c26c,
                0x9cd0_d89d
            ]
        );
    }
}
