//! MediaBench-style kernels (the paper's first 15 applications).

mod adpcm;
mod epic;
mod g721;
mod gsm;
mod jpeg;
mod mpeg2;
mod pegwit;
mod sha;
mod susan;

pub use adpcm::{AdpcmDecode, AdpcmEncode};
pub use epic::Epic;
pub use g721::{G721Decode, G721Encode};
pub use gsm::{GsmDecode, GsmEncode};
pub use jpeg::{JpegDecode, JpegEncode};
pub use mpeg2::{Mpeg2Decode, Mpeg2Encode};
pub use pegwit::PegwitDecrypt;
pub use sha::Sha;
pub use susan::{SusanCorners, SusanEdges};
