//! MPEG-2 motion kernels (MediaBench `mpeg2encode` / `mpeg2decode`).
//!
//! The dominant loops of an MPEG-2 encoder and decoder are,
//! respectively, block-matching motion *estimation* (SAD search over a
//! window in the reference frame) and motion *compensation*
//! (prediction copy + residual add). This kernel implements both over
//! 16×16 macroblocks of an 8-bit frame pair in simulated memory.

use crate::util::{checksum_region, Alloc, SplitMix64};
use crate::Scale;
use ehsim_mem::{Bus, Workload};

const MB: u32 = 16;
/// Motion search radius (±4 pixels, full search).
const RADIUS: i32 = 4;

/// Frame geometry: `mbw × mbh` macroblocks.
#[derive(Debug, Clone, Copy)]
struct Geom {
    mbw: u32,
    mbh: u32,
}

impl Geom {
    fn width(&self) -> u32 {
        self.mbw * MB
    }
    fn height(&self) -> u32 {
        self.mbh * MB
    }
    fn frame_bytes(&self) -> u32 {
        self.width() * self.height()
    }
}

struct Layout {
    reference: u32,
    current: u32,
    output: u32,
    vectors: u32,
    total: u32,
}

fn layout(g: Geom) -> Layout {
    let mut a = Alloc::new();
    let reference = a.array(g.frame_bytes());
    let current = a.array(g.frame_bytes());
    let output = a.array(g.frame_bytes());
    let vectors = a.array(g.mbw * g.mbh * 4);
    Layout {
        reference,
        current,
        output,
        vectors,
        total: a.used(),
    }
}

fn init_frames(bus: &mut dyn Bus, g: Geom, l: &Layout, seed: u64) {
    let mut rng = SplitMix64::new(seed);
    for y in 0..g.height() {
        for x in 0..g.width() {
            let v = ((x * 3 + y * 5) % 223) + (rng.next_u32() & 7);
            bus.store_u8(l.reference + y * g.width() + x, v as u8);
        }
    }
    // The current frame is the reference shifted by a "true" global
    // motion of (+2, +1) plus noise, so the estimator has something
    // meaningful to find.
    for y in 0..g.height() {
        for x in 0..g.width() {
            let sx = (x + 2).min(g.width() - 1);
            let sy = (y + 1).min(g.height() - 1);
            let v = bus.load_u8(l.reference + sy * g.width() + sx);
            let noisy = v.wrapping_add((rng.next_u32() & 3) as u8);
            bus.store_u8(l.current + y * g.width() + x, noisy);
        }
    }
}

/// Sum of absolute differences between the macroblock at `(bx, by)` of
/// the current frame and the reference block displaced by `(dx, dy)`.
fn sad(bus: &mut dyn Bus, g: Geom, l: &Layout, bx: u32, by: u32, dx: i32, dy: i32) -> u32 {
    let mut acc = 0u32;
    for y in 0..MB {
        for x in 0..MB {
            let cx = bx * MB + x;
            let cy = by * MB + y;
            let rx = (cx as i32 + dx).clamp(0, g.width() as i32 - 1) as u32;
            let ry = (cy as i32 + dy).clamp(0, g.height() as i32 - 1) as u32;
            let c = bus.load_u8(l.current + cy * g.width() + cx);
            let r = bus.load_u8(l.reference + ry * g.width() + rx);
            acc += u32::from(c.abs_diff(r));
            bus.compute(2);
        }
    }
    acc
}

macro_rules! mpeg2_workload {
    ($name:ident, $label:literal, $encode:expr, ($dw:expr, $dh:expr), $doc:literal) => {
        #[doc = $doc]
        #[derive(Debug, Clone)]
        pub struct $name {
            mbw: u32,
            mbh: u32,
        }

        impl $name {
            /// Kernel over `mbw × mbh` macroblocks.
            ///
            /// # Panics
            ///
            /// Panics if either dimension is zero.
            pub fn new(mbw: u32, mbh: u32) -> Self {
                assert!(mbw > 0 && mbh > 0);
                Self { mbw, mbh }
            }

            /// Test-sized instance.
            pub fn small() -> Self {
                Self::new(2, 2)
            }

            /// Instance for `scale`.
            pub fn with_scale(scale: Scale) -> Self {
                match scale {
                    Scale::Small => Self::small(),
                    Scale::Default => Self::new($dw, $dh),
                }
            }

            fn geom(&self) -> Geom {
                Geom {
                    mbw: self.mbw,
                    mbh: self.mbh,
                }
            }
        }

        impl Workload for $name {
            fn name(&self) -> &str {
                $label
            }

            fn mem_bytes(&self) -> u32 {
                layout(self.geom()).total
            }

            fn run(&self, bus: &mut dyn Bus) -> u64 {
                let g = self.geom();
                let l = layout(g);
                init_frames(bus, g, &l, 0x289 + u64::from($encode));

                for by in 0..g.mbh {
                    for bx in 0..g.mbw {
                        let mb_ix = by * g.mbw + bx;
                        if $encode {
                            // Full-search motion estimation.
                            let mut best = u32::MAX;
                            let mut best_v = (0i32, 0i32);
                            for dy in -RADIUS..=RADIUS {
                                for dx in -RADIUS..=RADIUS {
                                    let s = sad(bus, g, &l, bx, by, dx, dy);
                                    bus.compute(3);
                                    if s < best {
                                        best = s;
                                        best_v = (dx, dy);
                                    }
                                }
                            }
                            let packed = ((best_v.0 + 16) as u32) << 24
                                | ((best_v.1 + 16) as u32) << 16
                                | (best & 0xffff);
                            bus.store_u32(l.vectors + 4 * mb_ix, packed);
                        } else {
                            // Motion compensation with the known global
                            // vector: prediction copy + residual add.
                            for y in 0..MB {
                                for x in 0..MB {
                                    let cx = bx * MB + x;
                                    let cy = by * MB + y;
                                    let rx = (cx + 2).min(g.width() - 1);
                                    let ry = (cy + 1).min(g.height() - 1);
                                    let pred = bus.load_u8(l.reference + ry * g.width() + rx);
                                    let cur = bus.load_u8(l.current + cy * g.width() + cx);
                                    let residual = cur.wrapping_sub(pred);
                                    let recon = pred.wrapping_add(residual);
                                    bus.store_u8(l.output + cy * g.width() + cx, recon);
                                    bus.compute(3);
                                }
                            }
                            bus.store_u32(l.vectors + 4 * mb_ix, mb_ix);
                        }
                    }
                }
                let tail = if $encode { l.vectors } else { l.output };
                checksum_region(bus, tail, g.mbw * g.mbh)
            }
        }
    };
}

mpeg2_workload!(
    Mpeg2Encode,
    "mpeg2encode",
    true,
    (6, 5),
    "MediaBench `mpeg2encode`: full-search block-matching motion estimation."
);
mpeg2_workload!(
    Mpeg2Decode,
    "mpeg2decode",
    false,
    (32, 28),
    "MediaBench `mpeg2decode`: motion compensation + residual reconstruction."
);

#[cfg(test)]
mod tests {
    use super::*;
    use crate::util::test_support::check_workload;
    use ehsim_mem::FunctionalMem;

    #[test]
    fn encode_properties() {
        check_workload(
            Mpeg2Encode::small(),
            Mpeg2Encode::with_scale(Scale::Default),
        );
    }

    #[test]
    fn decode_properties() {
        check_workload(
            Mpeg2Decode::small(),
            Mpeg2Decode::with_scale(Scale::Default),
        );
    }

    #[test]
    fn estimator_finds_the_planted_motion() {
        // With a globally shifted frame, most blocks should match at
        // (+2, +1).
        let w = Mpeg2Encode::small();
        let mut mem = FunctionalMem::new(w.mem_bytes());
        let _ = w.run(&mut mem);
        let g = Geom { mbw: 2, mbh: 2 };
        let l = layout(g);
        let mut hits = 0;
        for i in 0..4u32 {
            let packed = mem.load_u32(l.vectors + 4 * i);
            let dx = (packed >> 24) as i32 - 16;
            let dy = ((packed >> 16) & 0xff) as i32 - 16;
            if (dx, dy) == (2, 1) {
                hits += 1;
            }
        }
        assert!(hits >= 3, "only {hits}/4 blocks matched the true motion");
    }

    #[test]
    fn reconstruction_matches_current_frame() {
        let w = Mpeg2Decode::small();
        let mut mem = FunctionalMem::new(w.mem_bytes());
        let _ = w.run(&mut mem);
        let g = Geom { mbw: 2, mbh: 2 };
        let l = layout(g);
        for i in (0..g.frame_bytes()).step_by(97) {
            assert_eq!(
                mem.load_u8(l.output + i),
                mem.load_u8(l.current + i),
                "pred + residual must reconstruct exactly"
            );
        }
    }
}
