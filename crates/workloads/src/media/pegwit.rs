//! Pegwit-style public-key decryption (MediaBench `pegwitdecrypt`).
//!
//! Pegwit combines elliptic-curve key agreement over GF(2^255) with a
//! square-hash symmetric layer. Its compute profile is dominated by
//! wide-word arithmetic (multi-limb multiplication/reduction) followed
//! by a keystream pass over the ciphertext. This kernel reproduces that
//! profile: a 256-bit Montgomery-style modular exponentiation ladder
//! (the key-agreement stand-in) whose result keys a word-wise stream
//! cipher that decrypts a buffer in simulated memory.

use crate::util::{checksum_region, Alloc, SplitMix64};
use crate::Scale;
use ehsim_mem::{Bus, Workload};

/// Number of 32-bit limbs in the wide integers (256 bits).
const LIMBS: u32 = 8;

struct Layout {
    modulus: u32,
    base: u32,
    acc: u32,
    tmp: u32,
    cipher: u32,
    plain: u32,
    total: u32,
}

fn layout(words: u32) -> Layout {
    let mut a = Alloc::new();
    let modulus = a.array(LIMBS * 4);
    let base = a.array(LIMBS * 4);
    let acc = a.array(LIMBS * 4);
    let tmp = a.array(LIMBS * 8);
    let cipher = a.array(words * 4);
    let plain = a.array(words * 4);
    Layout {
        modulus,
        base,
        acc,
        tmp,
        cipher,
        plain,
        total: a.used(),
    }
}

/// `dst ← (x · y) mod m`, schoolbook multiply + trial-subtraction
/// reduction, all limbs in simulated memory.
fn modmul(bus: &mut dyn Bus, l: &Layout, dst: u32, x: u32, y: u32) {
    // Widen into tmp (2·LIMBS limbs).
    for i in 0..2 * LIMBS {
        bus.store_u32(l.tmp + 4 * i, 0);
    }
    for i in 0..LIMBS {
        let xi = u64::from(bus.load_u32(x + 4 * i));
        let mut carry = 0u64;
        for j in 0..LIMBS {
            let yj = u64::from(bus.load_u32(y + 4 * j));
            let t = u64::from(bus.load_u32(l.tmp + 4 * (i + j)));
            let prod = xi * yj + t + carry;
            bus.store_u32(l.tmp + 4 * (i + j), prod as u32);
            carry = prod >> 32;
            bus.compute(4);
        }
        bus.store_u32(l.tmp + 4 * (i + LIMBS), carry as u32);
    }
    // Cheap pseudo-Montgomery fold: xor-fold the high half into the low
    // half then conditionally subtract the modulus once. (Not a real
    // field reduction — the *traffic and arithmetic density* are what
    // matter here, and the operation stays deterministic.)
    for i in 0..LIMBS {
        let lo = bus.load_u32(l.tmp + 4 * i);
        let hi = bus.load_u32(l.tmp + 4 * (i + LIMBS));
        bus.store_u32(dst + 4 * i, lo ^ hi.rotate_left(7));
        bus.compute(2);
    }
    let top = bus.load_u32(dst + 4 * (LIMBS - 1));
    let mtop = bus.load_u32(l.modulus + 4 * (LIMBS - 1));
    if top >= mtop {
        let mut borrow = 0i64;
        for i in 0..LIMBS {
            let d = i64::from(bus.load_u32(dst + 4 * i));
            let m = i64::from(bus.load_u32(l.modulus + 4 * i));
            let r = d - m - borrow;
            borrow = i64::from(r < 0);
            bus.store_u32(dst + 4 * i, (r & 0xffff_ffff) as u32);
            bus.compute(2);
        }
    }
}

/// MediaBench `pegwitdecrypt`.
#[derive(Debug, Clone)]
pub struct PegwitDecrypt {
    words: u32,
    ladder_bits: u32,
}

impl PegwitDecrypt {
    /// Decrypts `words` 32-bit words after a `ladder_bits`-step
    /// exponentiation ladder.
    ///
    /// # Panics
    ///
    /// Panics if either parameter is zero.
    pub fn new(words: u32, ladder_bits: u32) -> Self {
        assert!(words > 0 && ladder_bits > 0);
        Self { words, ladder_bits }
    }

    /// Test-sized instance.
    pub fn small() -> Self {
        Self::new(512, 32)
    }

    /// Instance for `scale`.
    pub fn with_scale(scale: Scale) -> Self {
        match scale {
            Scale::Small => Self::small(),
            Scale::Default => Self::new(49_152, 768),
        }
    }
}

impl Workload for PegwitDecrypt {
    fn name(&self) -> &str {
        "pegwitdecrypt"
    }

    fn mem_bytes(&self) -> u32 {
        layout(self.words).total
    }

    fn run(&self, bus: &mut dyn Bus) -> u64 {
        let l = layout(self.words);
        let mut rng = SplitMix64::new(0x9e97);
        for i in 0..LIMBS {
            bus.store_u32(l.modulus + 4 * i, rng.next_u32() | 1);
            bus.store_u32(l.base + 4 * i, rng.next_u32());
            bus.store_u32(l.acc + 4 * i, u32::from(i == 0));
        }
        for i in 0..self.words {
            bus.store_u32(l.cipher + 4 * i, rng.next_u32());
        }

        // Square-and-multiply ladder: acc ← acc² · base^bit.
        let exponent = 0xb105_f00d_cafe_f00du64;
        for bit in 0..self.ladder_bits {
            modmul(bus, &l, l.acc, l.acc, l.acc);
            if (exponent >> (bit % 64)) & 1 == 1 {
                modmul(bus, &l, l.acc, l.acc, l.base);
            }
            bus.compute(4);
        }

        // Keystream from the shared secret decrypts the buffer.
        let mut ks = 0u32;
        for i in 0..LIMBS {
            ks = ks.rotate_left(9) ^ bus.load_u32(l.acc + 4 * i);
        }
        for i in 0..self.words {
            ks = ks.wrapping_mul(0x01000193).rotate_left(5) ^ i;
            let c = bus.load_u32(l.cipher + 4 * i);
            bus.store_u32(l.plain + 4 * i, c ^ ks);
            bus.compute(3);
        }
        checksum_region(bus, l.plain, self.words)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::util::test_support::check_workload;
    use ehsim_mem::FunctionalMem;

    #[test]
    fn pegwit_properties() {
        check_workload(
            PegwitDecrypt::small(),
            PegwitDecrypt::with_scale(Scale::Default),
        );
    }

    #[test]
    fn decryption_is_keystream_xor() {
        // plain ^ cipher must be identical for every run (fixed key).
        let w = PegwitDecrypt::small();
        let mut m1 = FunctionalMem::new(w.mem_bytes());
        let _ = w.run(&mut m1);
        let mut m2 = FunctionalMem::new(w.mem_bytes());
        let _ = w.run(&mut m2);
        let l = layout(512);
        for i in 0..512u32 {
            let k1 = m1.load_u32(l.plain + 4 * i) ^ m1.load_u32(l.cipher + 4 * i);
            let k2 = m2.load_u32(l.plain + 4 * i) ^ m2.load_u32(l.cipher + 4 * i);
            assert_eq!(k1, k2);
        }
    }

    #[test]
    fn modmul_stays_within_limbs() {
        let mut mem = FunctionalMem::new(4096);
        let l = layout(1);
        let mut rng = SplitMix64::new(3);
        for i in 0..LIMBS {
            mem.store_u32(l.modulus + 4 * i, rng.next_u32() | 1);
            mem.store_u32(l.base + 4 * i, rng.next_u32());
            mem.store_u32(l.acc + 4 * i, rng.next_u32());
        }
        modmul(&mut mem, &l, l.acc, l.acc, l.base);
        // Result fits in LIMBS words by construction (fold).
        for i in 0..LIMBS {
            let _ = mem.load_u32(l.acc + 4 * i);
        }
    }
}
