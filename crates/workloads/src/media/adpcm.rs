//! IMA ADPCM codec (MediaBench `adpcmencode` / `adpcmdecode`).
//!
//! A faithful IMA ADPCM implementation: 16-bit PCM ↔ 4-bit codes with
//! the standard 89-entry step-size table and index-adjustment table.
//! Both tables live in simulated memory (as the C benchmark's `.rodata`
//! does), so the codec's characteristic access mix — streaming input,
//! streaming packed output, hot table lines — flows through the cache.

use crate::util::{checksum_region, Alloc, SplitMix64};
use crate::Scale;
use ehsim_mem::{Bus, Workload};

/// The standard IMA step-size table.
const STEP_TABLE: [u16; 89] = [
    7, 8, 9, 10, 11, 12, 13, 14, 16, 17, 19, 21, 23, 25, 28, 31, 34, 37, 41, 45, 50, 55, 60, 66,
    73, 80, 88, 97, 107, 118, 130, 143, 157, 173, 190, 209, 230, 253, 279, 307, 337, 371, 408, 449,
    494, 544, 598, 658, 724, 796, 876, 963, 1060, 1166, 1282, 1411, 1552, 1707, 1878, 2066, 2272,
    2499, 2749, 3024, 3327, 3660, 4026, 4428, 4871, 5358, 5894, 6484, 7132, 7845, 8630, 9493,
    10442, 11487, 12635, 13899, 15289, 16818, 18500, 20350, 22385, 24623, 27086, 29794, 32767,
];

/// The standard IMA index-adjustment table.
const INDEX_TABLE: [i8; 16] = [-1, -1, -1, -1, 2, 4, 6, 8, -1, -1, -1, -1, 2, 4, 6, 8];

struct Layout {
    step_tab: u32,
    index_tab: u32,
    input: u32,
    output: u32,
    total: u32,
}

fn layout(samples: u32, decode: bool) -> Layout {
    let mut a = Alloc::new();
    let step_tab = a.array(89 * 2);
    let index_tab = a.array(16);
    let (input, output) = if decode {
        (a.array(samples / 2), a.array(samples * 2))
    } else {
        (a.array(samples * 2), a.array(samples / 2))
    };
    Layout {
        step_tab,
        index_tab,
        input,
        output,
        total: a.used(),
    }
}

fn init_tables(bus: &mut dyn Bus, l: &Layout) {
    for (i, s) in STEP_TABLE.iter().enumerate() {
        bus.store_u16(l.step_tab + 2 * i as u32, *s);
    }
    for (i, d) in INDEX_TABLE.iter().enumerate() {
        bus.store_u8(l.index_tab + i as u32, *d as u8);
    }
}

/// Shared predictor state, updated exactly as the reference coder does.
struct CodecState {
    predicted: i32,
    index: i32,
}

impl CodecState {
    fn new() -> Self {
        Self {
            predicted: 0,
            index: 0,
        }
    }

    fn step(&self, bus: &mut dyn Bus, l: &Layout) -> i32 {
        i32::from(bus.load_u16(l.step_tab + 2 * self.index as u32))
    }

    fn adjust(&mut self, bus: &mut dyn Bus, l: &Layout, code: u8) {
        let delta = bus.load_u8(l.index_tab + u32::from(code)) as i8;
        self.index = (self.index + i32::from(delta)).clamp(0, 88);
    }

    /// Reconstructs the difference for `code` at step size `step` and
    /// updates the predictor (common to encoder and decoder).
    fn reconstruct(&mut self, bus: &mut dyn Bus, code: u8, step: i32) {
        let mut diff = step >> 3;
        if code & 4 != 0 {
            diff += step;
        }
        if code & 2 != 0 {
            diff += step >> 1;
        }
        if code & 1 != 0 {
            diff += step >> 2;
        }
        if code & 8 != 0 {
            self.predicted -= diff;
        } else {
            self.predicted += diff;
        }
        self.predicted = self.predicted.clamp(-32768, 32767);
        bus.compute(6);
    }
}

fn encode_sample(state: &mut CodecState, bus: &mut dyn Bus, l: &Layout, sample: i16) -> u8 {
    let step = state.step(bus, l);
    let mut diff = i32::from(sample) - state.predicted;
    let mut code: u8 = 0;
    if diff < 0 {
        code |= 8;
        diff = -diff;
    }
    let mut s = step;
    if diff >= s {
        code |= 4;
        diff -= s;
    }
    s >>= 1;
    if diff >= s {
        code |= 2;
        diff -= s;
    }
    s >>= 1;
    if diff >= s {
        code |= 1;
    }
    bus.compute(8);
    state.reconstruct(bus, code & 0x7 | (code & 8), step);
    state.adjust(bus, l, code);
    code
}

fn decode_code(state: &mut CodecState, bus: &mut dyn Bus, l: &Layout, code: u8) -> i16 {
    let step = state.step(bus, l);
    state.reconstruct(bus, code, step);
    state.adjust(bus, l, code);
    state.predicted as i16
}

/// MediaBench `adpcmencode`: PCM → 4-bit IMA ADPCM.
#[derive(Debug, Clone)]
pub struct AdpcmEncode {
    samples: u32,
}

impl AdpcmEncode {
    /// Encoder over `samples` PCM samples (must be even and ≥ 2).
    ///
    /// # Panics
    ///
    /// Panics if `samples` is odd or zero.
    pub fn new(samples: u32) -> Self {
        assert!(samples >= 2 && samples.is_multiple_of(2));
        Self { samples }
    }

    /// Test-sized instance.
    pub fn small() -> Self {
        Self::new(2_000)
    }

    /// Instance for `scale`.
    pub fn with_scale(scale: Scale) -> Self {
        match scale {
            Scale::Small => Self::small(),
            Scale::Default => Self::new(200_000),
        }
    }
}

impl Workload for AdpcmEncode {
    fn name(&self) -> &str {
        "adpcmencode"
    }

    fn mem_bytes(&self) -> u32 {
        layout(self.samples, false).total
    }

    fn run(&self, bus: &mut dyn Bus) -> u64 {
        let l = layout(self.samples, false);
        init_tables(bus, &l);
        let mut rng = SplitMix64::new(0xadc0de);
        for t in 0..self.samples {
            let s = rng.pcm_sample(t);
            bus.store_u16(l.input + 2 * t, s as u16);
        }
        let mut st = CodecState::new();
        for t in 0..self.samples / 2 {
            let a = bus.load_u16(l.input + 4 * t) as i16;
            let b = bus.load_u16(l.input + 4 * t + 2) as i16;
            let ca = encode_sample(&mut st, bus, &l, a);
            let cb = encode_sample(&mut st, bus, &l, b);
            bus.store_u8(l.output + t, ca | (cb << 4));
        }
        checksum_region(bus, l.output, self.samples / 8)
    }
}

/// MediaBench `adpcmdecode`: 4-bit IMA ADPCM → PCM.
#[derive(Debug, Clone)]
pub struct AdpcmDecode {
    samples: u32,
}

impl AdpcmDecode {
    /// Decoder producing `samples` PCM samples (must be even and ≥ 2).
    ///
    /// # Panics
    ///
    /// Panics if `samples` is odd or zero.
    pub fn new(samples: u32) -> Self {
        assert!(samples >= 2 && samples.is_multiple_of(2));
        Self { samples }
    }

    /// Test-sized instance.
    pub fn small() -> Self {
        Self::new(2_000)
    }

    /// Instance for `scale`.
    pub fn with_scale(scale: Scale) -> Self {
        match scale {
            Scale::Small => Self::small(),
            Scale::Default => Self::new(100_000),
        }
    }
}

impl Workload for AdpcmDecode {
    fn name(&self) -> &str {
        "adpcmdecode"
    }

    fn mem_bytes(&self) -> u32 {
        layout(self.samples, true).total
    }

    fn run(&self, bus: &mut dyn Bus) -> u64 {
        let l = layout(self.samples, true);
        init_tables(bus, &l);
        // Synthesise a compressed stream by actually encoding a PCM
        // source — decoding random nibbles would still be valid IMA but
        // this keeps the decoder exercising realistic code sequences.
        let mut rng = SplitMix64::new(0xdec0de);
        let mut enc = CodecState::new();
        for t in 0..self.samples / 2 {
            let sa = rng.pcm_sample(2 * t);
            let sb = rng.pcm_sample(2 * t + 1);
            let ca = encode_sample(&mut enc, bus, &l, sa);
            let cb = encode_sample(&mut enc, bus, &l, sb);
            bus.store_u8(l.input + t, ca | (cb << 4));
        }
        let mut st = CodecState::new();
        for t in 0..self.samples / 2 {
            let packed = bus.load_u8(l.input + t);
            let a = decode_code(&mut st, bus, &l, packed & 0xf);
            let b = decode_code(&mut st, bus, &l, packed >> 4);
            bus.store_u16(l.output + 4 * t, a as u16);
            bus.store_u16(l.output + 4 * t + 2, b as u16);
        }
        checksum_region(bus, l.output, self.samples / 2)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::util::test_support::check_workload;
    use ehsim_mem::FunctionalMem;

    #[test]
    fn encode_properties() {
        check_workload(
            AdpcmEncode::small(),
            AdpcmEncode::with_scale(Scale::Default),
        );
    }

    #[test]
    fn decode_properties() {
        check_workload(
            AdpcmDecode::small(),
            AdpcmDecode::with_scale(Scale::Default),
        );
    }

    #[test]
    fn decoder_tracks_encoder_roughly() {
        // Encode then decode inside the decoder kernel: the decoded PCM
        // must correlate with a plausible waveform (bounded values).
        let w = AdpcmDecode::small();
        let mut mem = FunctionalMem::new(w.mem_bytes());
        let _ = w.run(&mut mem);
        // Spot-check some decoded samples for boundedness.
        let l = layout(2_000, true);
        for t in 0..100u32 {
            let s = mem.load_u16(l.output + 4 * t) as i16;
            // Reconstruction must not be stuck at an extreme.
            assert_ne!(s, i16::MIN);
        }
    }

    #[test]
    #[should_panic]
    fn odd_sample_count_rejected() {
        let _ = AdpcmEncode::new(3);
    }
}
