//! MiBench `dijkstra`: single-source shortest paths on a dense graph.
//!
//! MiBench's network `dijkstra` repeatedly scans an adjacency matrix
//! read from a file. This kernel keeps the same structure: a dense
//! `n × n` weight matrix, a linear-scan minimum selection (no heap —
//! as in the original), and distance/visited arrays, all in simulated
//! memory.

use crate::util::{checksum_region, Alloc, SplitMix64};
use crate::Scale;
use ehsim_mem::{Bus, Workload};

const INF: u32 = 0x3fff_ffff;

/// MiBench `dijkstra`.
#[derive(Debug, Clone)]
pub struct Dijkstra {
    nodes: u32,
    sources: u32,
}

impl Dijkstra {
    /// Shortest paths from `sources` source nodes on an `nodes`-node
    /// dense graph.
    ///
    /// # Panics
    ///
    /// Panics if `nodes < 2` or `sources == 0`.
    pub fn new(nodes: u32, sources: u32) -> Self {
        assert!(nodes >= 2 && sources > 0);
        Self { nodes, sources }
    }

    /// Test-sized instance.
    pub fn small() -> Self {
        Self::new(32, 4)
    }

    /// Instance for `scale`.
    pub fn with_scale(scale: Scale) -> Self {
        match scale {
            Scale::Small => Self::small(),
            Scale::Default => Self::new(128, 24),
        }
    }
}

impl Workload for Dijkstra {
    fn name(&self) -> &str {
        "dijkstra"
    }

    fn mem_bytes(&self) -> u32 {
        let mut a = Alloc::new();
        let _adj = a.array(self.nodes * self.nodes * 2);
        let _dist = a.array(self.nodes * 4);
        let _visited = a.array(self.nodes);
        let _result = a.array(self.sources * self.nodes * 4);
        a.used()
    }

    fn run(&self, bus: &mut dyn Bus) -> u64 {
        let mut a = Alloc::new();
        let adj = a.array(self.nodes * self.nodes * 2);
        let dist = a.array(self.nodes * 4);
        let visited = a.array(self.nodes);
        let result = a.array(self.sources * self.nodes * 4);

        // Random sparse-ish weights: ~30 % of edges present.
        let mut rng = SplitMix64::new(0xd175u64);
        for i in 0..self.nodes {
            for j in 0..self.nodes {
                let w = if i != j && rng.below(10) < 3 {
                    1 + (rng.next_u32() % 900)
                } else {
                    0xffff // no edge sentinel (u16)
                };
                bus.store_u16(adj + 2 * (i * self.nodes + j), w as u16);
            }
        }

        for s in 0..self.sources {
            let src = (s * 7) % self.nodes;
            for i in 0..self.nodes {
                bus.store_u32(dist + 4 * i, INF);
                bus.store_u8(visited + i, 0);
            }
            bus.store_u32(dist + 4 * src, 0);

            for _ in 0..self.nodes {
                // Linear-scan minimum (the MiBench way).
                let mut best = INF;
                let mut u = self.nodes;
                for i in 0..self.nodes {
                    let v = bus.load_u8(visited + i);
                    let d = bus.load_u32(dist + 4 * i);
                    bus.compute(2);
                    if v == 0 && d < best {
                        best = d;
                        u = i;
                    }
                }
                if u == self.nodes {
                    break;
                }
                bus.store_u8(visited + u, 1);
                // Relax all outgoing edges.
                for j in 0..self.nodes {
                    let w = u32::from(bus.load_u16(adj + 2 * (u * self.nodes + j)));
                    bus.compute(2);
                    if w == 0xffff {
                        continue;
                    }
                    let dj = bus.load_u32(dist + 4 * j);
                    if best + w < dj {
                        bus.store_u32(dist + 4 * j, best + w);
                    }
                }
            }
            for i in 0..self.nodes {
                let d = bus.load_u32(dist + 4 * i);
                bus.store_u32(result + 4 * (s * self.nodes + i), d);
            }
        }
        checksum_region(bus, result, self.sources * self.nodes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::util::test_support::check_workload;
    use ehsim_mem::FunctionalMem;

    #[test]
    fn dijkstra_properties() {
        check_workload(Dijkstra::small(), Dijkstra::with_scale(Scale::Default));
    }

    #[test]
    fn source_distance_is_zero_and_triangle_holds() {
        let w = Dijkstra::small();
        let mut mem = FunctionalMem::new(w.mem_bytes());
        let _ = w.run(&mut mem);
        let mut a = Alloc::new();
        let adj = a.array(32 * 32 * 2);
        let _dist = a.array(32 * 4);
        let _vis = a.array(32);
        let result = a.array(4 * 32 * 4);
        // Source of the first run is node 0.
        assert_eq!(mem.load_u32(result), 0);
        // Triangle inequality: d(j) <= d(i) + w(i,j) for all edges.
        for i in 0..32u32 {
            let di = mem.load_u32(result + 4 * i);
            if di >= INF {
                continue;
            }
            for j in 0..32u32 {
                let w = u32::from(mem.load_u16(adj + 2 * (i * 32 + j)));
                if w == 0xffff {
                    continue;
                }
                let dj = mem.load_u32(result + 4 * j);
                assert!(dj <= di + w, "triangle violated: d({j})={dj} > d({i})+{w}");
            }
        }
    }
}
