//! MiBench-style kernels (the paper's last 8 applications).

mod basicmath;
mod dijkstra;
mod fft;
mod patricia;
mod qsort;
mod rijndael;

pub use basicmath::BasicMath;
pub use dijkstra::Dijkstra;
pub use fft::{Fft, FftInverse};
pub use patricia::Patricia;
pub use qsort::Qsort;
pub use rijndael::{RijndaelDecrypt, RijndaelEncrypt};
