//! MiBench `patricia`: Patricia trie routing-table lookups.
//!
//! MiBench's network `patricia` inserts IP prefixes into a Patricia
//! (radix) trie and then resolves lookups — dominated by pointer
//! chasing through nodes scattered across memory. This kernel builds a
//! genuine bit-indexed Patricia trie in a node pool in simulated memory
//! (node = bit index, left/right child indices, stored key) and runs a
//! mixed insert/lookup stream of IPv4-like keys.

use crate::util::{Alloc, Checksum, SplitMix64};
use crate::Scale;
use ehsim_mem::{Bus, Workload};

/// Node record: `bit (u32) | left (u32) | right (u32) | key (u32)`.
const NODE_BYTES: u32 = 16;

struct Pool {
    base: u32,
    count: u32,
    capacity: u32,
}

impl Pool {
    fn node(&self, ix: u32) -> u32 {
        self.base + ix * NODE_BYTES
    }

    fn alloc(&mut self, bus: &mut dyn Bus, bit: u32, key: u32) -> u32 {
        assert!(self.count < self.capacity, "patricia node pool exhausted");
        let ix = self.count;
        self.count += 1;
        let n = self.node(ix);
        bus.store_u32(n, bit);
        bus.store_u32(n + 4, ix); // self-loop children initially
        bus.store_u32(n + 8, ix);
        bus.store_u32(n + 12, key);
        ix
    }
}

fn bit_of(key: u32, bit: u32) -> u32 {
    if bit >= 32 {
        0
    } else {
        (key >> (31 - bit)) & 1
    }
}

/// Walks the trie from the head following `key`'s bits until a back
/// edge (upward bit index) is taken; returns the landing node index.
fn search(bus: &mut dyn Bus, pool: &Pool, head: u32, key: u32) -> u32 {
    let mut parent = head;
    let mut current = {
        let b = bus.load_u32(pool.node(head));
        if bit_of(key, b) == 1 {
            bus.load_u32(pool.node(head) + 8)
        } else {
            bus.load_u32(pool.node(head) + 4)
        }
    };
    loop {
        let pb = bus.load_u32(pool.node(parent));
        let cb = bus.load_u32(pool.node(current));
        bus.compute(4);
        if cb <= pb {
            return current; // back edge: reached a leaf reference
        }
        parent = current;
        current = if bit_of(key, cb) == 1 {
            bus.load_u32(pool.node(current) + 8)
        } else {
            bus.load_u32(pool.node(current) + 4)
        };
    }
}

/// Inserts `key`, returning `true` if it was new.
fn insert(bus: &mut dyn Bus, pool: &mut Pool, head: u32, key: u32) -> bool {
    let found = search(bus, pool, head, key);
    let found_key = bus.load_u32(pool.node(found) + 12);
    if found_key == key {
        return false;
    }
    // First differing bit between key and found_key.
    let diff = key ^ found_key;
    let bit = diff.leading_zeros();
    bus.compute(4);

    let new_ix = pool.alloc(bus, bit, key);

    // Re-walk from the head, stopping where the new bit index fits.
    let mut parent = head;
    let mut current = {
        let b = bus.load_u32(pool.node(head));
        if bit_of(key, b) == 1 {
            bus.load_u32(pool.node(head) + 8)
        } else {
            bus.load_u32(pool.node(head) + 4)
        }
    };
    loop {
        let pb = bus.load_u32(pool.node(parent));
        let cb = bus.load_u32(pool.node(current));
        bus.compute(4);
        if cb <= pb || cb > bit {
            break;
        }
        parent = current;
        current = if bit_of(key, cb) == 1 {
            bus.load_u32(pool.node(current) + 8)
        } else {
            bus.load_u32(pool.node(current) + 4)
        };
    }

    // Wire the new node between parent and current.
    if bit_of(key, bit) == 1 {
        bus.store_u32(pool.node(new_ix) + 8, new_ix);
        bus.store_u32(pool.node(new_ix) + 4, current);
    } else {
        bus.store_u32(pool.node(new_ix) + 4, new_ix);
        bus.store_u32(pool.node(new_ix) + 8, current);
    }
    let pb = bus.load_u32(pool.node(parent));
    if bit_of(key, pb) == 1 {
        bus.store_u32(pool.node(parent) + 8, new_ix);
    } else {
        bus.store_u32(pool.node(parent) + 4, new_ix);
    }
    true
}

/// MiBench `patricia`.
#[derive(Debug, Clone)]
pub struct Patricia {
    inserts: u32,
    lookups: u32,
}

impl Patricia {
    /// Inserts `inserts` keys then performs `lookups` lookups.
    ///
    /// # Panics
    ///
    /// Panics if `inserts == 0`.
    pub fn new(inserts: u32, lookups: u32) -> Self {
        assert!(inserts > 0);
        Self { inserts, lookups }
    }

    /// Test-sized instance.
    pub fn small() -> Self {
        Self::new(400, 1_200)
    }

    /// Instance for `scale`.
    pub fn with_scale(scale: Scale) -> Self {
        match scale {
            Scale::Small => Self::small(),
            Scale::Default => Self::new(4_000, 24_000),
        }
    }
}

impl Workload for Patricia {
    fn name(&self) -> &str {
        "patricia"
    }

    fn mem_bytes(&self) -> u32 {
        let mut a = Alloc::new();
        let _pool = a.array((self.inserts + 2) * NODE_BYTES);
        a.used()
    }

    fn run(&self, bus: &mut dyn Bus) -> u64 {
        let mut a = Alloc::new();
        let base = a.array((self.inserts + 2) * NODE_BYTES);
        let mut pool = Pool {
            base,
            count: 0,
            capacity: self.inserts + 2,
        };
        // Head node: bit 0, key 0 (all-zeros sentinel route).
        let head = pool.alloc(bus, 0, 0);

        // Insert a routing-table-like key mix: clustered /16 prefixes
        // with random hosts.
        let mut rng = SplitMix64::new(0x9a77);
        let mut inserted = 0u64;
        for i in 0..self.inserts {
            let prefix = (10u32 + (i % 40)) << 24 | (rng.below(64)) << 16;
            let key = prefix | rng.below(1 << 16);
            if insert(bus, &mut pool, head, key) {
                inserted += 1;
            }
        }

        // Lookup stream: 75 % hits (replayed inserts), 25 % misses.
        let mut c = Checksum::new();
        let mut replay = SplitMix64::new(0x9a77);
        for i in 0..self.lookups {
            let key = if i % 4 != 3 {
                let prefix = (10u32 + (i % 40)) << 24 | (replay.below(64)) << 16;
                prefix | replay.below(1 << 16)
            } else {
                rng.next_u32()
            };
            let found = search(bus, &pool, head, key);
            let fkey = bus.load_u32(pool.node(found) + 12);
            c.push(u64::from(fkey == key));
            c.push(u64::from(fkey >> 24));
        }
        c.push(inserted);
        c.value()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::util::test_support::check_workload;
    use ehsim_mem::FunctionalMem;

    #[test]
    fn patricia_properties() {
        check_workload(Patricia::small(), Patricia::with_scale(Scale::Default));
    }

    #[test]
    fn inserted_keys_are_found() {
        let mut mem = FunctionalMem::new(64 * NODE_BYTES + 64);
        let mut pool = Pool {
            base: 0,
            count: 0,
            capacity: 64,
        };
        let head = pool.alloc(&mut mem, 0, 0);
        let keys = [0xc0a8_0001u32, 0xc0a8_0002, 0x0a00_0001, 0xffff_ffff, 0x1];
        for k in keys {
            assert!(insert(&mut mem, &mut pool, head, k), "insert {k:#x}");
        }
        for k in keys {
            let f = search(&mut mem, &pool, head, k);
            assert_eq!(mem.load_u32(pool.node(f) + 12), k, "lookup {k:#x}");
        }
        // Duplicate insert is rejected.
        assert!(!insert(&mut mem, &mut pool, head, keys[0]));
        // A missing key lands on some other node.
        let f = search(&mut mem, &pool, head, 0xdead_beef);
        assert_ne!(mem.load_u32(pool.node(f) + 12), 0xdead_beef);
    }
}
