//! MiBench `rijndael_e` / `rijndael_d`: real AES-128 in CBC mode.
//!
//! A complete, standard AES-128: key expansion, SubBytes/ShiftRows/
//! MixColumns rounds and their inverses, chained in CBC over a buffer.
//! The S-boxes and the expanded round keys live in simulated memory, so
//! the cipher shows its characteristic profile: extremely hot table
//! lines, block-sequential data traffic and dense ALU work.

use crate::util::{checksum_region, Alloc, SplitMix64};
use crate::Scale;
use ehsim_mem::{Bus, Workload};

/// The AES S-box.
const SBOX: [u8; 256] = [
    0x63, 0x7c, 0x77, 0x7b, 0xf2, 0x6b, 0x6f, 0xc5, 0x30, 0x01, 0x67, 0x2b, 0xfe, 0xd7, 0xab, 0x76,
    0xca, 0x82, 0xc9, 0x7d, 0xfa, 0x59, 0x47, 0xf0, 0xad, 0xd4, 0xa2, 0xaf, 0x9c, 0xa4, 0x72, 0xc0,
    0xb7, 0xfd, 0x93, 0x26, 0x36, 0x3f, 0xf7, 0xcc, 0x34, 0xa5, 0xe5, 0xf1, 0x71, 0xd8, 0x31, 0x15,
    0x04, 0xc7, 0x23, 0xc3, 0x18, 0x96, 0x05, 0x9a, 0x07, 0x12, 0x80, 0xe2, 0xeb, 0x27, 0xb2, 0x75,
    0x09, 0x83, 0x2c, 0x1a, 0x1b, 0x6e, 0x5a, 0xa0, 0x52, 0x3b, 0xd6, 0xb3, 0x29, 0xe3, 0x2f, 0x84,
    0x53, 0xd1, 0x00, 0xed, 0x20, 0xfc, 0xb1, 0x5b, 0x6a, 0xcb, 0xbe, 0x39, 0x4a, 0x4c, 0x58, 0xcf,
    0xd0, 0xef, 0xaa, 0xfb, 0x43, 0x4d, 0x33, 0x85, 0x45, 0xf9, 0x02, 0x7f, 0x50, 0x3c, 0x9f, 0xa8,
    0x51, 0xa3, 0x40, 0x8f, 0x92, 0x9d, 0x38, 0xf5, 0xbc, 0xb6, 0xda, 0x21, 0x10, 0xff, 0xf3, 0xd2,
    0xcd, 0x0c, 0x13, 0xec, 0x5f, 0x97, 0x44, 0x17, 0xc4, 0xa7, 0x7e, 0x3d, 0x64, 0x5d, 0x19, 0x73,
    0x60, 0x81, 0x4f, 0xdc, 0x22, 0x2a, 0x90, 0x88, 0x46, 0xee, 0xb8, 0x14, 0xde, 0x5e, 0x0b, 0xdb,
    0xe0, 0x32, 0x3a, 0x0a, 0x49, 0x06, 0x24, 0x5c, 0xc2, 0xd3, 0xac, 0x62, 0x91, 0x95, 0xe4, 0x79,
    0xe7, 0xc8, 0x37, 0x6d, 0x8d, 0xd5, 0x4e, 0xa9, 0x6c, 0x56, 0xf4, 0xea, 0x65, 0x7a, 0xae, 0x08,
    0xba, 0x78, 0x25, 0x2e, 0x1c, 0xa6, 0xb4, 0xc6, 0xe8, 0xdd, 0x74, 0x1f, 0x4b, 0xbd, 0x8b, 0x8a,
    0x70, 0x3e, 0xb5, 0x66, 0x48, 0x03, 0xf6, 0x0e, 0x61, 0x35, 0x57, 0xb9, 0x86, 0xc1, 0x1d, 0x9e,
    0xe1, 0xf8, 0x98, 0x11, 0x69, 0xd9, 0x8e, 0x94, 0x9b, 0x1e, 0x87, 0xe9, 0xce, 0x55, 0x28, 0xdf,
    0x8c, 0xa1, 0x89, 0x0d, 0xbf, 0xe6, 0x42, 0x68, 0x41, 0x99, 0x2d, 0x0f, 0xb0, 0x54, 0xbb, 0x16,
];

const RCON: [u8; 10] = [0x01, 0x02, 0x04, 0x08, 0x10, 0x20, 0x40, 0x80, 0x1b, 0x36];

struct Layout {
    sbox: u32,
    inv_sbox: u32,
    round_keys: u32, // 11 × 16 bytes
    data: u32,
    total: u32,
}

fn layout(blocks: u32) -> Layout {
    let mut a = Alloc::new();
    let sbox = a.array(256);
    let inv_sbox = a.array(256);
    let round_keys = a.array(11 * 16);
    let data = a.array(blocks * 16);
    Layout {
        sbox,
        inv_sbox,
        round_keys,
        data,
        total: a.used(),
    }
}

fn init_tables(bus: &mut dyn Bus, l: &Layout) {
    for (i, s) in SBOX.iter().enumerate() {
        bus.store_u8(l.sbox + i as u32, *s);
        bus.store_u8(l.inv_sbox + u32::from(*s), i as u8);
    }
}

fn sub(bus: &mut dyn Bus, l: &Layout, inv: bool, b: u8) -> u8 {
    let table = if inv { l.inv_sbox } else { l.sbox };
    bus.load_u8(table + u32::from(b))
}

/// AES-128 key expansion into the in-memory round-key schedule.
fn expand_key(bus: &mut dyn Bus, l: &Layout, key: [u8; 16]) {
    for (i, b) in key.iter().enumerate() {
        bus.store_u8(l.round_keys + i as u32, *b);
    }
    for round in 1..=10u32 {
        let prev = l.round_keys + (round - 1) * 16;
        let cur = l.round_keys + round * 16;
        // First word: rotate, substitute, rcon.
        let mut w = [
            bus.load_u8(prev + 13),
            bus.load_u8(prev + 14),
            bus.load_u8(prev + 15),
            bus.load_u8(prev + 12),
        ];
        for b in w.iter_mut() {
            *b = sub(bus, l, false, *b);
        }
        w[0] ^= RCON[(round - 1) as usize];
        for i in 0..4u32 {
            let p = bus.load_u8(prev + i);
            let v = p ^ w[i as usize];
            bus.store_u8(cur + i, v);
        }
        for i in 4..16u32 {
            let p = bus.load_u8(prev + i);
            let c = bus.load_u8(cur + i - 4);
            bus.store_u8(cur + i, p ^ c);
        }
        bus.compute(24);
    }
}

fn add_round_key(bus: &mut dyn Bus, l: &Layout, state: &mut [u8; 16], round: u32) {
    for (i, s) in state.iter_mut().enumerate() {
        *s ^= bus.load_u8(l.round_keys + round * 16 + i as u32);
    }
    bus.compute(16);
}

fn xtime(b: u8) -> u8 {
    (b << 1) ^ (if b & 0x80 != 0 { 0x1b } else { 0 })
}

fn gmul(mut a: u8, mut b: u8) -> u8 {
    let mut p = 0u8;
    for _ in 0..8 {
        if b & 1 != 0 {
            p ^= a;
        }
        a = xtime(a);
        b >>= 1;
    }
    p
}

fn shift_rows(state: &mut [u8; 16], inv: bool) {
    let s = *state;
    for r in 1..4usize {
        for c in 0..4usize {
            let from = if inv { (c + 4 - r) % 4 } else { (c + r) % 4 };
            state[c * 4 + r] = s[from * 4 + r];
        }
    }
}

fn mix_columns(state: &mut [u8; 16], inv: bool) {
    for c in 0..4 {
        let col = &mut state[4 * c..4 * c + 4];
        let (a0, a1, a2, a3) = (col[0], col[1], col[2], col[3]);
        if inv {
            col[0] = gmul(a0, 14) ^ gmul(a1, 11) ^ gmul(a2, 13) ^ gmul(a3, 9);
            col[1] = gmul(a0, 9) ^ gmul(a1, 14) ^ gmul(a2, 11) ^ gmul(a3, 13);
            col[2] = gmul(a0, 13) ^ gmul(a1, 9) ^ gmul(a2, 14) ^ gmul(a3, 11);
            col[3] = gmul(a0, 11) ^ gmul(a1, 13) ^ gmul(a2, 9) ^ gmul(a3, 14);
        } else {
            col[0] = gmul(a0, 2) ^ gmul(a1, 3) ^ a2 ^ a3;
            col[1] = a0 ^ gmul(a1, 2) ^ gmul(a2, 3) ^ a3;
            col[2] = a0 ^ a1 ^ gmul(a2, 2) ^ gmul(a3, 3);
            col[3] = gmul(a0, 3) ^ a1 ^ a2 ^ gmul(a3, 2);
        }
    }
}

fn encrypt_block(bus: &mut dyn Bus, l: &Layout, state: &mut [u8; 16]) {
    add_round_key(bus, l, state, 0);
    for round in 1..10 {
        for s in state.iter_mut() {
            *s = sub(bus, l, false, *s);
        }
        shift_rows(state, false);
        mix_columns(state, false);
        bus.compute(120);
        add_round_key(bus, l, state, round);
    }
    for s in state.iter_mut() {
        *s = sub(bus, l, false, *s);
    }
    shift_rows(state, false);
    bus.compute(30);
    add_round_key(bus, l, state, 10);
}

fn decrypt_block(bus: &mut dyn Bus, l: &Layout, state: &mut [u8; 16]) {
    add_round_key(bus, l, state, 10);
    for round in (1..10).rev() {
        shift_rows(state, true);
        for s in state.iter_mut() {
            *s = sub(bus, l, true, *s);
        }
        bus.compute(30);
        add_round_key(bus, l, state, round);
        mix_columns(state, true);
        bus.compute(150);
    }
    shift_rows(state, true);
    for s in state.iter_mut() {
        *s = sub(bus, l, true, *s);
    }
    bus.compute(30);
    add_round_key(bus, l, state, 0);
}

const KEY: [u8; 16] = [
    0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae, 0xd2, 0xa6, 0xab, 0xf7, 0x15, 0x88, 0x09, 0xcf, 0x4f, 0x3c,
];
const IV: [u8; 16] = [
    0x00, 0x01, 0x02, 0x03, 0x04, 0x05, 0x06, 0x07, 0x08, 0x09, 0x0a, 0x0b, 0x0c, 0x0d, 0x0e, 0x0f,
];

fn load_block(bus: &mut dyn Bus, addr: u32) -> [u8; 16] {
    let mut b = [0u8; 16];
    for (i, slot) in b.iter_mut().enumerate() {
        *slot = bus.load_u8(addr + i as u32);
    }
    b
}

fn store_block(bus: &mut dyn Bus, addr: u32, b: &[u8; 16]) {
    for (i, v) in b.iter().enumerate() {
        bus.store_u8(addr + i as u32, *v);
    }
}

macro_rules! rijndael_workload {
    ($name:ident, $label:literal, $encrypt:expr, $doc:literal) => {
        #[doc = $doc]
        #[derive(Debug, Clone)]
        pub struct $name {
            blocks: u32,
        }

        impl $name {
            /// Processes `blocks` 16-byte blocks in CBC mode.
            ///
            /// # Panics
            ///
            /// Panics if `blocks == 0`.
            pub fn new(blocks: u32) -> Self {
                assert!(blocks > 0);
                Self { blocks }
            }

            /// Test-sized instance.
            pub fn small() -> Self {
                Self::new(24)
            }

            /// Instance for `scale`.
            pub fn with_scale(scale: Scale) -> Self {
                match scale {
                    Scale::Small => Self::small(),
                    Scale::Default => Self::new(1_440),
                }
            }
        }

        impl Workload for $name {
            fn name(&self) -> &str {
                $label
            }

            fn mem_bytes(&self) -> u32 {
                layout(self.blocks).total
            }

            fn run(&self, bus: &mut dyn Bus) -> u64 {
                let l = layout(self.blocks);
                init_tables(bus, &l);
                expand_key(bus, &l, KEY);
                let mut rng = SplitMix64::new(0xae5);
                for i in 0..self.blocks * 16 {
                    bus.store_u8(l.data + i, rng.next_u32() as u8);
                }
                let mut chain = IV;
                for b in 0..self.blocks {
                    let addr = l.data + 16 * b;
                    let mut block = load_block(bus, addr);
                    if $encrypt {
                        for i in 0..16 {
                            block[i] ^= chain[i];
                        }
                        encrypt_block(bus, &l, &mut block);
                        chain = block;
                    } else {
                        let cipher = block;
                        decrypt_block(bus, &l, &mut block);
                        for i in 0..16 {
                            block[i] ^= chain[i];
                        }
                        chain = cipher;
                    }
                    store_block(bus, addr, &block);
                }
                checksum_region(bus, l.data, self.blocks * 4)
            }
        }
    };
}

rijndael_workload!(
    RijndaelEncrypt,
    "rijndael_e",
    true,
    "MiBench `rijndael_e`: AES-128 CBC encryption."
);
rijndael_workload!(
    RijndaelDecrypt,
    "rijndael_d",
    false,
    "MiBench `rijndael_d`: AES-128 CBC decryption."
);

#[cfg(test)]
mod tests {
    use super::*;
    use crate::util::test_support::check_workload;
    use ehsim_mem::FunctionalMem;

    #[test]
    fn encrypt_properties() {
        check_workload(
            RijndaelEncrypt::small(),
            RijndaelEncrypt::with_scale(Scale::Default),
        );
    }

    #[test]
    fn decrypt_properties() {
        check_workload(
            RijndaelDecrypt::small(),
            RijndaelDecrypt::with_scale(Scale::Default),
        );
    }

    #[test]
    fn matches_fips197_vector() {
        // FIPS-197 Appendix B: plaintext 3243f6a8885a308d313198a2e0370734
        // under key 2b7e151628aed2a6abf7158809cf4f3c →
        // 3925841d02dc09fbdc118597196a0b32.
        let mut mem = FunctionalMem::new(2048);
        let l = layout(1);
        init_tables(&mut mem, &l);
        expand_key(&mut mem, &l, KEY);
        let mut state = [
            0x32, 0x43, 0xf6, 0xa8, 0x88, 0x5a, 0x30, 0x8d, 0x31, 0x31, 0x98, 0xa2, 0xe0, 0x37,
            0x07, 0x34,
        ];
        encrypt_block(&mut mem, &l, &mut state);
        assert_eq!(
            state,
            [
                0x39, 0x25, 0x84, 0x1d, 0x02, 0xdc, 0x09, 0xfb, 0xdc, 0x11, 0x85, 0x97, 0x19, 0x6a,
                0x0b, 0x32
            ]
        );
        decrypt_block(&mut mem, &l, &mut state);
        assert_eq!(state[0], 0x32);
        assert_eq!(state[15], 0x34);
    }

    #[test]
    fn cbc_roundtrip_via_two_kernels() {
        // Encrypt a buffer, feed the ciphertext into the decrypter's
        // pipeline manually, and confirm the plaintext returns.
        let mut mem = FunctionalMem::new(4096);
        let l = layout(4);
        init_tables(&mut mem, &l);
        expand_key(&mut mem, &l, KEY);
        let plain: Vec<[u8; 16]> = (0..4u8)
            .map(|b| core::array::from_fn(|i| b.wrapping_mul(31).wrapping_add(i as u8)))
            .collect();
        let mut chain = IV;
        let mut cipher = Vec::new();
        for p in &plain {
            let mut blk = *p;
            for i in 0..16 {
                blk[i] ^= chain[i];
            }
            encrypt_block(&mut mem, &l, &mut blk);
            chain = blk;
            cipher.push(blk);
        }
        let mut chain = IV;
        for (c, p) in cipher.iter().zip(&plain) {
            let mut blk = *c;
            decrypt_block(&mut mem, &l, &mut blk);
            for i in 0..16 {
                blk[i] ^= chain[i];
            }
            chain = *c;
            assert_eq!(&blk, p);
        }
    }

    #[test]
    fn gf_multiplication_identities() {
        assert_eq!(gmul(1, 0x53), 0x53);
        assert_eq!(gmul(0x53, 1), 0x53);
        assert_eq!(gmul(2, 0x80), 0x1b);
        // 0x53 · 0xCA = 0x01 (known inverse pair).
        assert_eq!(gmul(0x53, 0xca), 0x01);
    }
}
