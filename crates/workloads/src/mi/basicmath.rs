//! MiBench `basicmath`: cube roots, integer square roots and angle
//! conversions.
//!
//! MiBench's automotive `basicmath` solves cubics, takes integer square
//! roots and converts degrees to radians in long scalar loops with very
//! light memory traffic — the suite's most compute-bound member. This
//! kernel does the same in fixed point: Newton cube roots, bitwise
//! integer square roots and Q16 angle conversion, storing each result
//! to an output table.

use crate::util::{checksum_region, Alloc, SplitMix64};
use crate::Scale;
use ehsim_mem::{Bus, Workload};

/// MiBench `basicmath`.
#[derive(Debug, Clone)]
pub struct BasicMath {
    iterations: u32,
}

impl BasicMath {
    /// Runs `iterations` of each solver family.
    ///
    /// # Panics
    ///
    /// Panics if `iterations == 0`.
    pub fn new(iterations: u32) -> Self {
        assert!(iterations > 0);
        Self { iterations }
    }

    /// Test-sized instance.
    pub fn small() -> Self {
        Self::new(600)
    }

    /// Instance for `scale`.
    pub fn with_scale(scale: Scale) -> Self {
        match scale {
            Scale::Small => Self::small(),
            Scale::Default => Self::new(20_000),
        }
    }
}

/// Bitwise integer square root.
fn isqrt(x: u64) -> u32 {
    let mut op = x;
    let mut res = 0u64;
    let mut one = 1u64 << 62;
    while one > op {
        one >>= 2;
    }
    while one != 0 {
        if op >= res + one {
            op -= res + one;
            res = (res >> 1) + one;
        } else {
            res >>= 1;
        }
        one >>= 2;
    }
    res as u32
}

/// Newton iteration cube root of a Q0 integer, rounded-down integer
/// result. Internally y is kept in Q8: y³ (Q24) must match `x << 24`.
fn cbrt_q8(x: i64) -> i64 {
    if x == 0 {
        return 0;
    }
    let neg = x < 0;
    let target = x.abs() << 24;
    let mut y: i64 = 1 << 8;
    for _ in 0..40 {
        let y2 = (y * y).max(1);
        y = (2 * y + target / y2) / 3;
    }
    let r = y >> 8;
    if neg {
        -r
    } else {
        r
    }
}

/// Degrees → radians in Q16 (π = 205887/65536).
fn deg_to_rad_q16(deg: i32) -> i64 {
    i64::from(deg) * 205_887 / 180
}

impl Workload for BasicMath {
    fn name(&self) -> &str {
        "basicmath"
    }

    fn mem_bytes(&self) -> u32 {
        let mut a = Alloc::new();
        let _out = a.array(self.iterations * 12);
        a.used()
    }

    fn run(&self, bus: &mut dyn Bus) -> u64 {
        let mut a = Alloc::new();
        let out = a.array(self.iterations * 12);
        let mut rng = SplitMix64::new(0xba51c);
        for i in 0..self.iterations {
            let x = i64::from(rng.next_u32() % 1_000_000) - 500_000;
            let c = cbrt_q8(x);
            bus.compute(60);
            let s = isqrt(u64::from(rng.next_u32()));
            bus.compute(64);
            let r = deg_to_rad_q16((i % 720) as i32 - 360);
            bus.compute(4);
            bus.store_u32(out + 12 * i, c as u32);
            bus.store_u32(out + 12 * i + 4, s);
            bus.store_u32(out + 12 * i + 8, r as u32);
        }
        checksum_region(bus, out, self.iterations * 3)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::util::test_support::check_workload;

    #[test]
    fn basicmath_properties() {
        check_workload(BasicMath::small(), BasicMath::with_scale(Scale::Default));
    }

    #[test]
    fn isqrt_exact_on_squares() {
        for v in [0u64, 1, 4, 9, 144, 1 << 40] {
            let r = u64::from(isqrt(v));
            assert_eq!(r * r, v);
        }
        assert_eq!(isqrt(8), 2);
        assert_eq!(isqrt(u64::from(u32::MAX) * u64::from(u32::MAX)), u32::MAX);
    }

    #[test]
    fn cbrt_is_roughly_right() {
        for (x, expect) in [(27i64, 3i64), (1_000, 10), (-8, -2), (0, 0)] {
            let got = cbrt_q8(x);
            assert!(
                (got - expect).abs() <= 1,
                "cbrt({x}) ≈ {got}, expected ~{expect}"
            );
        }
    }

    #[test]
    fn degree_conversion_landmarks() {
        // 180° = π ≈ 3.14159 in Q16 ≈ 205887.
        assert_eq!(deg_to_rad_q16(180), 205_887);
        assert_eq!(deg_to_rad_q16(0), 0);
        assert_eq!(deg_to_rad_q16(-180), -205_887);
    }
}
