//! MiBench `qsort`: in-memory iterative quicksort.
//!
//! The array *and* the recursion stack live in simulated memory, so the
//! kernel produces quicksort's signature mix: streaming partition scans
//! with data-dependent swap stores, plus stack pushes/pops — one of the
//! most store-dense kernels in the suite.

use crate::util::{checksum_region, Alloc, SplitMix64};
use crate::Scale;
use ehsim_mem::{Bus, Workload};

/// MiBench `qsort`.
#[derive(Debug, Clone)]
pub struct Qsort {
    elements: u32,
}

impl Qsort {
    /// Sorts `elements` 32-bit keys.
    ///
    /// # Panics
    ///
    /// Panics if `elements < 2`.
    pub fn new(elements: u32) -> Self {
        assert!(elements >= 2);
        Self { elements }
    }

    /// Test-sized instance.
    pub fn small() -> Self {
        Self::new(1_024)
    }

    /// Instance for `scale`.
    pub fn with_scale(scale: Scale) -> Self {
        match scale {
            Scale::Small => Self::small(),
            Scale::Default => Self::new(40_000),
        }
    }
}

impl Workload for Qsort {
    fn name(&self) -> &str {
        "qsort"
    }

    fn mem_bytes(&self) -> u32 {
        let mut a = Alloc::new();
        let _data = a.array(self.elements * 4);
        let _stack = a.array(64 * 8);
        a.used()
    }

    fn run(&self, bus: &mut dyn Bus) -> u64 {
        let mut a = Alloc::new();
        let data = a.array(self.elements * 4);
        let stack = a.array(64 * 8);

        let mut rng = SplitMix64::new(0x9504);
        for i in 0..self.elements {
            bus.store_u32(data + 4 * i, rng.next_u32());
        }

        // Explicit stack of (lo, hi) ranges, in memory.
        let mut sp: u32 = 0;
        let push = |bus: &mut dyn Bus, sp: &mut u32, lo: u32, hi: u32| {
            bus.store_u32(stack + 8 * *sp, lo);
            bus.store_u32(stack + 8 * *sp + 4, hi);
            *sp += 1;
            assert!(*sp < 64, "quicksort stack overflow");
        };
        push(bus, &mut sp, 0, self.elements - 1);

        while sp > 0 {
            sp -= 1;
            let lo = bus.load_u32(stack + 8 * sp);
            let hi = bus.load_u32(stack + 8 * sp + 4);
            if lo >= hi {
                continue;
            }
            // Insertion sort for tiny ranges, like the C library does.
            if hi - lo < 8 {
                for i in lo + 1..=hi {
                    let key = bus.load_u32(data + 4 * i);
                    let mut j = i;
                    while j > lo {
                        let prev = bus.load_u32(data + 4 * (j - 1));
                        bus.compute(2);
                        if prev <= key {
                            break;
                        }
                        bus.store_u32(data + 4 * j, prev);
                        j -= 1;
                    }
                    bus.store_u32(data + 4 * j, key);
                }
                continue;
            }
            // Median-of-three pivot.
            let mid = lo + (hi - lo) / 2;
            let (a0, a1, a2) = (
                bus.load_u32(data + 4 * lo),
                bus.load_u32(data + 4 * mid),
                bus.load_u32(data + 4 * hi),
            );
            let pivot = a0.max(a1.min(a2)).min(a1.max(a2.min(a0)));
            bus.compute(6);

            // Hoare partition.
            let mut i = lo;
            let mut j = hi;
            loop {
                while bus.load_u32(data + 4 * i) < pivot {
                    i += 1;
                    bus.compute(2);
                }
                while bus.load_u32(data + 4 * j) > pivot {
                    j -= 1;
                    bus.compute(2);
                }
                if i >= j {
                    break;
                }
                let vi = bus.load_u32(data + 4 * i);
                let vj = bus.load_u32(data + 4 * j);
                bus.store_u32(data + 4 * i, vj);
                bus.store_u32(data + 4 * j, vi);
                i += 1;
                j -= 1;
                bus.compute(2);
            }
            push(bus, &mut sp, lo, j);
            push(bus, &mut sp, j + 1, hi);
        }
        checksum_region(bus, data, self.elements.min(4_096))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::util::test_support::check_workload;
    use ehsim_mem::FunctionalMem;

    #[test]
    fn qsort_properties() {
        check_workload(Qsort::small(), Qsort::with_scale(Scale::Default));
    }

    #[test]
    fn output_is_sorted() {
        let w = Qsort::small();
        let mut mem = FunctionalMem::new(w.mem_bytes());
        let _ = w.run(&mut mem);
        let mut prev = 0u32;
        for i in 0..1_024u32 {
            let v = mem.load_u32(4 * i);
            assert!(v >= prev, "unsorted at index {i}");
            prev = v;
        }
    }

    #[test]
    fn sorting_preserves_multiset() {
        // XOR and sum of elements are permutation-invariant.
        let w = Qsort::new(512);
        let mut rng = SplitMix64::new(0x9504);
        let mut xor = 0u32;
        let mut sum = 0u64;
        for _ in 0..512 {
            let v = rng.next_u32();
            xor ^= v;
            sum = sum.wrapping_add(u64::from(v));
        }
        let mut mem = FunctionalMem::new(w.mem_bytes());
        let _ = w.run(&mut mem);
        let mut xor2 = 0u32;
        let mut sum2 = 0u64;
        for i in 0..512u32 {
            let v = mem.load_u32(4 * i);
            xor2 ^= v;
            sum2 = sum2.wrapping_add(u64::from(v));
        }
        assert_eq!((xor, sum), (xor2, sum2));
    }
}
