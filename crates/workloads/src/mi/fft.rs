//! MiBench `FFT` / `FFT_i`: fixed-point radix-2 FFT and inverse.
//!
//! An in-place iterative Cooley–Tukey FFT over Q14 fixed-point
//! real/imaginary arrays in simulated memory, with the classic
//! bit-reversal permutation (scattered stores) and per-stage butterfly
//! sweeps (strided loads) that make FFT a staple cache workload. The
//! twiddle factors come from an in-memory quarter-wave sine table, as
//! the MiBench version's `sin`/`cos` calls would after lowering.

use crate::util::{checksum_region, Alloc, SplitMix64};
use crate::Scale;
use ehsim_mem::{Bus, Workload};

/// Q14 quarter-wave sine table resolution.
const SINE_POINTS: u32 = 256;

struct Layout {
    sine: u32,
    re: u32,
    im: u32,
    total: u32,
}

fn layout(n: u32) -> Layout {
    let mut a = Alloc::new();
    let sine = a.array(SINE_POINTS * 2);
    let re = a.array(n * 4);
    let im = a.array(n * 4);
    Layout {
        sine,
        re,
        im,
        total: a.used(),
    }
}

/// Fills the quarter-wave sine table (Q14) using integer Taylor terms.
fn init_sine(bus: &mut dyn Bus, l: &Layout) {
    for i in 0..SINE_POINTS {
        // angle = i/SINE_POINTS * pi/2, computed in Q14 via
        // x - x^3/6 + x^5/120 (enough for 4-digit accuracy).
        let x = (i as i64 * 25_736) / i64::from(SINE_POINTS); // pi/2 in Q14 ≈ 25736
        let x2 = (x * x) >> 14;
        let x3 = (x2 * x) >> 14;
        let x5 = (x3 * x2) >> 14;
        let s = x - x3 / 6 + x5 / 120;
        bus.store_u16(l.sine + 2 * i, (s.clamp(0, 16_384)) as u16);
    }
}

/// Looks up sin(2π·k/n) in Q14 from the quarter-wave table.
fn sin_q14(bus: &mut dyn Bus, l: &Layout, k: u32, n: u32) -> i32 {
    let phase = (k % n) as u64 * 4 * u64::from(SINE_POINTS) / u64::from(n);
    let quadrant = (phase / u64::from(SINE_POINTS)) % 4;
    let ix = (phase % u64::from(SINE_POINTS)) as u32;
    let raw = |bus: &mut dyn Bus, i: u32| -> i32 {
        i32::from(bus.load_u16(l.sine + 2 * i.min(SINE_POINTS - 1)) as i16)
    };
    match quadrant {
        0 => raw(bus, ix),
        1 => raw(bus, SINE_POINTS - 1 - ix),
        2 => -raw(bus, ix),
        _ => -raw(bus, SINE_POINTS - 1 - ix),
    }
}

fn cos_q14(bus: &mut dyn Bus, l: &Layout, k: u32, n: u32) -> i32 {
    sin_q14(bus, l, k + n / 4, n)
}

/// In-place FFT (or inverse) over the Q14 arrays at `l.re`/`l.im`.
fn fft_in_place(bus: &mut dyn Bus, l: &Layout, n: u32, inverse: bool) {
    // Bit-reversal permutation.
    let bits = n.trailing_zeros();
    for i in 0..n {
        let j = i.reverse_bits() >> (32 - bits);
        if j > i {
            for arr in [l.re, l.im] {
                let a = bus.load_u32(arr + 4 * i);
                let b = bus.load_u32(arr + 4 * j);
                bus.store_u32(arr + 4 * i, b);
                bus.store_u32(arr + 4 * j, a);
            }
            bus.compute(4);
        }
    }
    // Butterfly stages.
    let mut len = 2;
    while len <= n {
        let half = len / 2;
        for start in (0..n).step_by(len as usize) {
            for k in 0..half {
                let tw = k * (n / len);
                let mut wr = cos_q14(bus, l, tw, n);
                let mut wi = -sin_q14(bus, l, tw, n);
                if inverse {
                    wi = -wi;
                }
                // Scale each stage by 1/2 to prevent overflow.
                let i0 = start + k;
                let i1 = start + k + half;
                let ar = bus.load_u32(l.re + 4 * i0) as i32;
                let ai = bus.load_u32(l.im + 4 * i0) as i32;
                let br = bus.load_u32(l.re + 4 * i1) as i32;
                let bi = bus.load_u32(l.im + 4 * i1) as i32;
                wr >>= 0;
                wi >>= 0;
                let tr =
                    ((i64::from(br) * i64::from(wr) - i64::from(bi) * i64::from(wi)) >> 14) as i32;
                let ti =
                    ((i64::from(br) * i64::from(wi) + i64::from(bi) * i64::from(wr)) >> 14) as i32;
                bus.store_u32(l.re + 4 * i0, ((ar + tr) >> 1) as u32);
                bus.store_u32(l.im + 4 * i0, ((ai + ti) >> 1) as u32);
                bus.store_u32(l.re + 4 * i1, ((ar - tr) >> 1) as u32);
                bus.store_u32(l.im + 4 * i1, ((ai - ti) >> 1) as u32);
                bus.compute(10);
            }
        }
        len *= 2;
    }
}

macro_rules! fft_workload {
    ($name:ident, $label:literal, $inverse:expr, $doc:literal) => {
        #[doc = $doc]
        #[derive(Debug, Clone)]
        pub struct $name {
            n: u32,
            rounds: u32,
        }

        impl $name {
            /// Transforms `rounds` buffers of `n` points each.
            ///
            /// # Panics
            ///
            /// Panics unless `n` is a power of two ≥ 8 and
            /// `rounds > 0`.
            pub fn new(n: u32, rounds: u32) -> Self {
                assert!(n.is_power_of_two() && n >= 8 && rounds > 0);
                Self { n, rounds }
            }

            /// Test-sized instance.
            pub fn small() -> Self {
                Self::new(256, 1)
            }

            /// Instance for `scale`.
            pub fn with_scale(scale: Scale) -> Self {
                match scale {
                    Scale::Small => Self::small(),
                    Scale::Default => Self::new(2_048, 3),
                }
            }
        }

        impl Workload for $name {
            fn name(&self) -> &str {
                $label
            }

            fn mem_bytes(&self) -> u32 {
                layout(self.n).total
            }

            fn run(&self, bus: &mut dyn Bus) -> u64 {
                let l = layout(self.n);
                init_sine(bus, &l);
                let mut acc = 0u64;
                for round in 0..self.rounds {
                    let mut rng = SplitMix64::new(0xff7 + u64::from(round));
                    for i in 0..self.n {
                        // Q14 samples in [-1, 1): two tones + noise.
                        let tone = sin_q14(bus, &l, (i * (3 + round)) % self.n, self.n) / 2
                            + sin_q14(bus, &l, (i * 17) % self.n, self.n) / 4;
                        let noise = (rng.next_u32() & 0xff) as i32 - 128;
                        bus.store_u32(l.re + 4 * i, (tone + noise) as u32);
                        bus.store_u32(l.im + 4 * i, 0);
                    }
                    fft_in_place(bus, &l, self.n, $inverse);
                    if $inverse {
                        // The inverse benchmark also applies a forward
                        // pass first (spectrum → time), as MiBench's
                        // `fft -i` round-trips.
                        fft_in_place(bus, &l, self.n, false);
                    }
                    acc ^= checksum_region(bus, l.re, self.n).rotate_left(round);
                }
                acc
            }
        }
    };
}

fft_workload!(
    Fft,
    "FFT",
    false,
    "MiBench `FFT`: forward fixed-point radix-2 FFT."
);
fft_workload!(
    FftInverse,
    "FFT_i",
    true,
    "MiBench `FFT_i`: inverse (plus forward) fixed-point FFT round."
);

#[cfg(test)]
mod tests {
    use super::*;
    use crate::util::test_support::check_workload;
    use ehsim_mem::FunctionalMem;

    #[test]
    fn fft_properties() {
        check_workload(Fft::small(), Fft::with_scale(Scale::Default));
    }

    #[test]
    fn ifft_properties() {
        check_workload(FftInverse::small(), FftInverse::with_scale(Scale::Default));
    }

    #[test]
    fn sine_table_landmarks() {
        let mut mem = FunctionalMem::new(4096);
        let l = layout(8);
        init_sine(&mut mem, &l);
        // sin(0) = 0.
        assert_eq!(sin_q14(&mut mem, &l, 0, 1024), 0);
        // sin(pi/2) = 1 in Q14 (±1 %).
        let s = sin_q14(&mut mem, &l, 256, 1024);
        assert!((s - 16_384).abs() < 200, "sin(pi/2) = {s}");
        // sin(-x) symmetry via 3rd quadrant.
        let a = sin_q14(&mut mem, &l, 100, 1024);
        let b = sin_q14(&mut mem, &l, 512 + 100, 1024);
        assert_eq!(a, -b);
    }

    #[test]
    fn impulse_transforms_to_flat_spectrum() {
        // FFT of a delta at 0 is constant across bins (up to the
        // per-stage scaling).
        let mut mem = FunctionalMem::new(layout(64).total);
        let l = layout(64);
        init_sine(&mut mem, &l);
        mem.store_u32(l.re, 8_192);
        for i in 1..64u32 {
            mem.store_u32(l.re + 4 * i, 0);
        }
        for i in 0..64u32 {
            mem.store_u32(l.im + 4 * i, 0);
        }
        fft_in_place(&mut mem, &l, 64, false);
        let first = mem.load_u32(l.re) as i32;
        assert!(first != 0);
        for i in 0..64u32 {
            let re = mem.load_u32(l.re + 4 * i) as i32;
            assert!((re - first).abs() <= 2, "bin {i}: {re} vs {first}");
        }
    }
}
