//! Trace analysis for the WL-Cache energy-harvesting simulator: turns
//! recorded timelines into answers.
//!
//! The observability layer records *what happened*; this crate answers
//! *so what*. It has four parts:
//!
//! * **Trace model** — [`Run`] / [`Span`] / interval rows, loadable
//!   from every format the simulator writes: Chrome `trace_event` JSON
//!   (`--trace-out`), streamed JSON-lines (`--stream-out`, the
//!   `StreamingObserver`), and the per-interval metrics TSV
//!   (`--metrics-out`). Formats are auto-detected by [`Run::parse`].
//! * **Cross-run diffing** — [`diff_runs`] aligns two runs by power-on
//!   interval and reports the first divergence (outage timing,
//!   dirty-at-checkpoint counts, threshold/DynRaise state) plus a
//!   summary table; `ehsim-cli diff-traces` is the command-line front
//!   end. A/B-ing a cache-policy change is one command.
//! * **Voltage trajectory export** — [`voltage_tsv`] / [`voltage_svg`]
//!   render the opt-in capacitor-voltage samples as data or as a
//!   self-contained Fig-1-style chart (`ehsim-cli voltage-plot`).
//! * **Streamed-trace reading** — [`Run::from_jsonl`] converts a
//!   constant-memory streamed capture back into the same model, so
//!   diffing and conversion work identically on streamed traces
//!   (`ehsim-cli convert-trace`).
//!
//! Loaders rebuild counters/histograms/intervals by replaying the
//! reconstructed timeline through the live `Recorder` code paths, so a
//! lossless source (JSONL) reconciles bit-for-bit with the recording
//! that produced it; the per-format fidelity caveats are documented on
//! [`Run`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod chrome;
mod diff;
mod model;
mod plot;

pub use diff::{diff_runs, render_diff, DiffReport, Divergence, FieldDiff, ThresholdState};
pub use model::{Run, SourceFormat, Span};
pub use plot::{voltage_svg, voltage_tsv};
