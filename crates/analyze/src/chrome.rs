//! Reader for our Chrome `trace_event` JSON: validates the input with
//! `validate_chrome_trace` semantics, then reconstructs the event
//! timeline from the rendered spans, instants and counter tracks.
//!
//! Two documented lossy spots (see [`crate::Run`]): the `dq_occupancy`
//! counter cannot distinguish a stale-drop of one entry from an ACK, so
//! occupancy decreases are attributed to ACKs; and line base addresses
//! are not carried by enqueue/ACK counter samples, so they read back as
//! zero. Everything the histograms and interval rows are built from —
//! lifecycle timing, outage lengths, flush counts, write-back latencies,
//! stalls, thresholds, energy samples — round-trips exactly.

use crate::model::{Run, SourceFormat};
use ehsim_mem::Ps;
use ehsim_obs::{validate_chrome_trace, Event};

fn field_str<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    let rest = &line[line.find(key)? + key.len()..];
    Some(&rest[..rest.find('"')?])
}

fn field_num(line: &str, key: &str) -> Option<f64> {
    let rest = &line[line.find(key)? + key.len()..];
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || ".-+e".contains(c)))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Converts a `ts`/`dur` value (µs, printed with 6 decimals by the
/// exporter) back to integer picoseconds. Exact for every timestamp the
/// exporter can produce: the 6-decimal rendering is ps-resolution and
/// the f64 round-trip error is far below half a picosecond.
fn ps_of(us: f64) -> Ps {
    (us * 1e6).round() as Ps
}

fn arg_u64(line: &str, lineno: usize, key: &str) -> Result<u64, String> {
    field_num(line, key)
        .map(|v| v.round() as u64)
        .ok_or_else(|| format!("line {lineno}: missing arg {key}"))
}

/// Parses an exporter-written Chrome trace back into a [`Run`].
///
/// # Errors
///
/// Returns schema-validation failures first (monotonic timestamps,
/// balanced spans), then reconstruction errors naming the line.
pub(crate) fn parse(text: &str) -> Result<Run, String> {
    validate_chrome_trace(text).map_err(|e| format!("invalid trace: {e}"))?;

    let mut events: Vec<(Ps, Event)> = Vec::new();
    let mut name: Option<String> = None;
    let mut dq_prev: i64 = 0;
    let mut pending_harvested: Option<f64> = None;
    // The first maxline+waterline counter pair is the pre-run
    // InitialThresholds emission; later threshold counters always
    // accompany a reconfigure/dyn-raise instant, which carries the
    // authoritative args.
    let mut initial_maxline: Option<usize> = None;
    let mut saw_initial = false;

    for (i, line) in text.lines().enumerate() {
        let n = i + 1;
        let Some(ph) = field_str(line, "\"ph\":\"") else {
            continue;
        };
        if ph == "M" {
            if field_str(line, "\"name\":\"") == Some("process_name") {
                if let Some(args) = line.find("\"args\"").map(|p| &line[p..]) {
                    name = field_str(args, "\"name\":\"").map(str::to_string);
                }
            }
            continue;
        }
        let ts = field_num(line, "\"ts\":")
            .map(ps_of)
            .ok_or_else(|| format!("line {n}: missing ts"))?;
        let ev_name =
            field_str(line, "\"name\":\"").ok_or_else(|| format!("line {n}: missing name"))?;
        match (ph, ev_name) {
            ("B", "on") => {
                let interval = arg_u64(line, n, "\"interval\":")?;
                events.push((ts, Event::PowerOn { interval }));
            }
            ("B", "checkpoint") => {
                let dirty_lines = arg_u64(line, n, "\"dirty_lines\":")? as usize;
                events.push((ts, Event::CheckpointBegin { dirty_lines }));
            }
            ("E", "checkpoint") => {
                let flushed_lines = arg_u64(line, n, "\"flushed_lines\":")?;
                events.push((ts, Event::CheckpointEnd { flushed_lines }));
            }
            ("B", "recharge") => events.push((ts, Event::PowerOff)),
            ("B", "restore") => events.push((ts, Event::RestoreBegin)),
            ("E", "restore") => events.push((ts, Event::RestoreEnd)),
            // "E on" / "E recharge" carry no information of their own:
            // the outage instant, restore begin, or RunEnd already mark
            // the transition.
            ("E", _) => {}
            ("i", "outage") => {
                let on_ps = arg_u64(line, n, "\"on_ps\":")?;
                let voltage = field_num(line, "\"voltage\":")
                    .ok_or_else(|| format!("line {n}: missing arg voltage"))?;
                events.push((ts, Event::OutageBegin { on_ps, voltage }));
            }
            ("i", "reconfigure") => {
                let maxline = arg_u64(line, n, "\"maxline\":")? as usize;
                let waterline = arg_u64(line, n, "\"waterline\":")? as usize;
                events.push((ts, Event::Reconfigure { maxline, waterline }));
            }
            ("i", "dyn-raise") => {
                let maxline = arg_u64(line, n, "\"maxline\":")? as usize;
                events.push((ts, Event::DynRaise { maxline }));
            }
            ("i", crossing) => {
                // Rail-crossing instants are named "<rail> rise|fall".
                if let Some((label, dir)) = crossing.rsplit_once(' ') {
                    let rail = match label {
                        "Von" => Some(ehsim_obs::Rail::Von),
                        "Vbackup" => Some(ehsim_obs::Rail::Vbackup),
                        "Vmin" => Some(ehsim_obs::Rail::Vmin),
                        _ => None,
                    };
                    if let (Some(rail), rising) = (rail, dir == "rise") {
                        events.push((ts, Event::VoltageCross { rail, rising }));
                    }
                }
            }
            ("X", "stall") => {
                let dur = field_num(line, "\"dur\":")
                    .map(ps_of)
                    .ok_or_else(|| format!("line {n}: missing dur"))?;
                events.push((ts, Event::DqStall { until: ts + dur }));
            }
            ("X", "writeback") => {
                let dur = field_num(line, "\"dur\":")
                    .map(ps_of)
                    .ok_or_else(|| format!("line {n}: missing dur"))?;
                let base = arg_u64(line, n, "\"base\":")? as u32;
                events.push((
                    ts,
                    Event::WritebackIssued {
                        base,
                        ack_at: ts + dur,
                    },
                ));
            }
            ("C", counter) => {
                let value = field_num(line, "\"value\":")
                    .ok_or_else(|| format!("line {n}: counter without value"))?;
                match counter {
                    "dq_occupancy" => {
                        let v = value.round() as i64;
                        let delta = v - dq_prev;
                        dq_prev = v;
                        if delta > 0 {
                            for _ in 0..delta {
                                events.push((ts, Event::DqEnqueue { base: 0 }));
                            }
                        } else if delta < 0 {
                            // A drop to zero right after a same-ts
                            // CheckpointEnd is the exporter's occupancy
                            // reset, not ACK traffic.
                            let is_reset = v == 0
                                && matches!(
                                    events.last(),
                                    Some(&(t, Event::CheckpointEnd { .. })) if t == ts
                                );
                            if !is_reset {
                                for _ in 0..-delta {
                                    events.push((ts, Event::DqAck { base: 0 }));
                                }
                            }
                        }
                    }
                    "maxline" if !saw_initial => {
                        initial_maxline = Some(value.round() as usize);
                    }
                    "waterline" if !saw_initial => {
                        if let Some(maxline) = initial_maxline.take() {
                            saw_initial = true;
                            events.push((
                                ts,
                                Event::InitialThresholds {
                                    maxline,
                                    waterline: value.round() as usize,
                                },
                            ));
                        }
                    }
                    "capacitor_v" => {
                        events.push((ts, Event::VoltageSample { voltage: value }));
                    }
                    "harvested_pj" => pending_harvested = Some(value),
                    "consumed_pj" => {
                        let harvested_pj = pending_harvested.take().ok_or_else(|| {
                            format!("line {n}: consumed_pj counter without harvested_pj")
                        })?;
                        events.push((
                            ts,
                            Event::EnergySample {
                                harvested_pj,
                                consumed_pj: value,
                            },
                        ));
                    }
                    // Redundant renderings of data carried elsewhere
                    // (histogram tracks mirror instants/spans; post-
                    // initial threshold counters mirror instants).
                    _ => {}
                }
            }
            _ => {}
        }
    }
    if events.is_empty() {
        return Err("no reconstructable events in trace".to_string());
    }
    Ok(Run::from_events(events, name, SourceFormat::ChromeJson))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ehsim_obs::{Observer, Recorder};

    fn recorded() -> ehsim_obs::RunTrace {
        let mut r = Recorder::default();
        r.event(
            0,
            Event::InitialThresholds {
                maxline: 6,
                waterline: 2,
            },
        );
        r.event(0, Event::PowerOn { interval: 0 });
        r.event(10, Event::DqEnqueue { base: 64 });
        r.event(12, Event::DqEnqueue { base: 128 });
        r.event(
            20,
            Event::WritebackIssued {
                base: 64,
                ack_at: 120,
            },
        );
        r.event(120, Event::DqAck { base: 64 });
        r.event(130, Event::DqStall { until: 150 });
        r.event(
            500,
            Event::OutageBegin {
                on_ps: 500,
                voltage: 2.9625,
            },
        );
        r.event(500, Event::CheckpointBegin { dirty_lines: 2 });
        r.event(
            560,
            Event::EnergySample {
                harvested_pj: 100.125,
                consumed_pj: 90.0625,
            },
        );
        r.event(560, Event::CheckpointEnd { flushed_lines: 2 });
        r.event(560, Event::PowerOff);
        r.event(
            800,
            Event::VoltageCross {
                rail: ehsim_obs::Rail::Von,
                rising: true,
            },
        );
        r.event(800, Event::RestoreBegin);
        r.event(820, Event::RestoreEnd);
        r.event(820, Event::PowerOn { interval: 1 });
        r.event(
            830,
            Event::Reconfigure {
                maxline: 5,
                waterline: 2,
            },
        );
        r.event(840, Event::DynRaise { maxline: 6 });
        r.event(850, Event::VoltageSample { voltage: 3.0125 });
        r.event(
            900,
            Event::EnergySample {
                harvested_pj: 130.5,
                consumed_pj: 95.125,
            },
        );
        r.finish(900)
    }

    #[test]
    fn chrome_round_trip_reconciles_counters_and_histograms() {
        let trace = recorded();
        let run = parse(&trace.chrome_trace("sha / WL-Cache / rf1")).unwrap();
        assert_eq!(run.name.as_deref(), Some("sha / WL-Cache / rf1"));
        let a = run.counters;
        let b = trace.counters;
        assert_eq!(a.power_ons, b.power_ons);
        assert_eq!(a.outages, b.outages);
        assert_eq!(a.checkpoints, b.checkpoints);
        assert_eq!(a.reconfigurations, b.reconfigurations);
        assert_eq!(a.dyn_raises, b.dyn_raises);
        assert_eq!(a.dq_enqueues, b.dq_enqueues);
        assert_eq!(a.dq_stalls, b.dq_stalls);
        assert_eq!(a.writebacks_issued, b.writebacks_issued);
        assert_eq!(a.voltage_crossings, b.voltage_crossings);
        assert_eq!(a.voltage_samples, b.voltage_samples);
        assert_eq!(a.energy_samples, b.energy_samples);
        // Stale drops fold into ACKs (documented): the combined count
        // is exact.
        assert_eq!(a.dq_acks + a.stale_drops, b.dq_acks + b.stale_drops);
        assert_eq!(run.histograms, trace.histograms);
        assert_eq!(run.intervals.len(), trace.intervals().len());
        // Interval rows agree on everything the format carries exactly.
        for (x, y) in run.intervals.iter().zip(trace.intervals()) {
            assert_eq!(x.interval, y.interval);
            assert_eq!(x.start_ps, y.start_ps);
            assert_eq!(x.end_ps, y.end_ps);
            assert_eq!(x.on_ps, y.on_ps);
            assert_eq!(x.dirty_flushed, y.dirty_flushed);
            assert_eq!(x.cleanings, y.cleanings);
            assert_eq!(x.enqueues, y.enqueues);
            assert_eq!(x.stalls, y.stalls);
            assert_eq!(x.dyn_raises, y.dyn_raises);
            assert_eq!(x.maxline, y.maxline);
            assert_eq!(x.waterline, y.waterline);
            assert_eq!(x.harvested_delta_pj, y.harvested_delta_pj);
            assert_eq!(x.consumed_delta_pj, y.consumed_delta_pj);
            assert_eq!(x.harvested_cum_pj, y.harvested_cum_pj);
            assert_eq!(x.consumed_cum_pj, y.consumed_cum_pj);
        }
        // The voltage trajectory survives (exact f64 round-trip).
        assert_eq!(run.voltage_series(), vec![(850, 3.0125)]);
    }

    #[test]
    fn rejects_invalid_input() {
        assert!(parse("not json").is_err());
        // Structurally valid but with nothing to reconstruct is fine as
        // long as at least one event maps; a metadata-only file fails
        // validation already (no events).
        assert!(parse("{\"traceEvents\": [\n]}\n").is_err());
    }
}
