//! Cross-run diffing: align two runs by power-on interval and report
//! the first divergence plus a side-by-side summary.

use crate::model::Run;
use ehsim_obs::TraceInterval;
use std::fmt::Write as _;

/// One differing field of the first diverging interval.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FieldDiff {
    /// Interval-row field name (matches the TSV column).
    pub field: &'static str,
    /// Value in run A.
    pub a: String,
    /// Value in run B.
    pub b: String,
}

/// WL threshold state of one side at the diverging interval, for
/// answering "did the adaptive/dynamic controller cause this?" at a
/// glance.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ThresholdState {
    /// `maxline` in force when the interval closed.
    pub maxline: Option<usize>,
    /// `waterline` in force when the interval closed.
    pub waterline: Option<usize>,
    /// Dynamic raises inside the interval.
    pub dyn_raises: u64,
}

impl ThresholdState {
    fn of(row: &TraceInterval) -> Self {
        ThresholdState {
            maxline: row.maxline,
            waterline: row.waterline,
            dyn_raises: row.dyn_raises,
        }
    }
}

/// The first point where two runs' timelines disagree.
#[derive(Debug, Clone, PartialEq)]
pub struct Divergence {
    /// Power-on interval index at which the runs first differ.
    pub interval: u64,
    /// Every differing field of that interval (empty when the
    /// divergence is one run ending early — see `fields` docs).
    pub fields: Vec<FieldDiff>,
    /// Threshold/DynRaise state of run A at the divergence (if the
    /// interval exists there).
    pub a_state: Option<ThresholdState>,
    /// Threshold/DynRaise state of run B at the divergence.
    pub b_state: Option<ThresholdState>,
}

/// Result of [`diff_runs`]: alignment outcome plus summary totals.
#[derive(Debug, Clone, PartialEq)]
pub struct DiffReport {
    /// Display label of run A (file name or trace process name).
    pub a_label: String,
    /// Display label of run B.
    pub b_label: String,
    /// Interval count of run A.
    pub a_intervals: usize,
    /// Interval count of run B.
    pub b_intervals: usize,
    /// First divergence, or `None` when the runs agree on every
    /// compared interval field.
    pub divergence: Option<Divergence>,
}

impl DiffReport {
    /// `true` when no divergence was found.
    pub fn identical(&self) -> bool {
        self.divergence.is_none()
    }
}

fn push_diff<T: PartialEq + std::fmt::Debug>(
    fields: &mut Vec<FieldDiff>,
    field: &'static str,
    a: &T,
    b: &T,
) {
    if a != b {
        fields.push(FieldDiff {
            field,
            a: format!("{a:?}"),
            b: format!("{b:?}"),
        });
    }
}

/// Compares two interval rows field by field, in severity order:
/// timing first (outage alignment), then checkpoint/DirtyQueue
/// behavior, then threshold state, then energy accounting.
fn diff_rows(a: &TraceInterval, b: &TraceInterval) -> Vec<FieldDiff> {
    let mut fields = Vec::new();
    push_diff(&mut fields, "start_ps", &a.start_ps, &b.start_ps);
    push_diff(&mut fields, "end_ps", &a.end_ps, &b.end_ps);
    push_diff(&mut fields, "on_ps", &a.on_ps, &b.on_ps);
    push_diff(
        &mut fields,
        "dirty_flushed",
        &a.dirty_flushed,
        &b.dirty_flushed,
    );
    push_diff(&mut fields, "cleanings", &a.cleanings, &b.cleanings);
    push_diff(&mut fields, "enqueues", &a.enqueues, &b.enqueues);
    push_diff(&mut fields, "acks", &a.acks, &b.acks);
    push_diff(&mut fields, "stalls", &a.stalls, &b.stalls);
    push_diff(&mut fields, "stale_drops", &a.stale_drops, &b.stale_drops);
    push_diff(&mut fields, "dyn_raises", &a.dyn_raises, &b.dyn_raises);
    push_diff(&mut fields, "maxline", &a.maxline, &b.maxline);
    push_diff(&mut fields, "waterline", &a.waterline, &b.waterline);
    push_diff(
        &mut fields,
        "harvested_pj",
        &a.harvested_delta_pj,
        &b.harvested_delta_pj,
    );
    push_diff(
        &mut fields,
        "consumed_pj",
        &a.consumed_delta_pj,
        &b.consumed_delta_pj,
    );
    fields
}

/// Aligns two runs by power-on interval index and finds the first
/// diverging interval (or the point where one run ends early). Runs
/// loaded from different formats are comparable, but fidelity caveats
/// of the lossier format apply (see [`Run`]).
pub fn diff_runs(a: &Run, a_label: &str, b: &Run, b_label: &str) -> DiffReport {
    let mut divergence = None;
    for (i, (ra, rb)) in a.intervals.iter().zip(&b.intervals).enumerate() {
        let fields = diff_rows(ra, rb);
        if !fields.is_empty() {
            divergence = Some(Divergence {
                interval: i as u64,
                fields,
                a_state: Some(ThresholdState::of(ra)),
                b_state: Some(ThresholdState::of(rb)),
            });
            break;
        }
    }
    if divergence.is_none() && a.intervals.len() != b.intervals.len() {
        // All shared intervals agree but one run has more: the first
        // unmatched interval is the divergence.
        let i = a.intervals.len().min(b.intervals.len());
        divergence = Some(Divergence {
            interval: i as u64,
            fields: vec![FieldDiff {
                field: "interval_count",
                a: a.intervals.len().to_string(),
                b: b.intervals.len().to_string(),
            }],
            a_state: a.intervals.get(i).map(ThresholdState::of),
            b_state: b.intervals.get(i).map(ThresholdState::of),
        });
    }
    DiffReport {
        a_label: a_label.to_string(),
        b_label: b_label.to_string(),
        a_intervals: a.intervals.len(),
        b_intervals: b.intervals.len(),
        divergence,
    }
}

fn state_line(side: &str, label: &str, state: Option<ThresholdState>) -> String {
    let fmt = |v: Option<usize>| v.map_or_else(|| "-".to_string(), |v| v.to_string());
    match state {
        Some(s) => format!(
            "  {side} {label}: maxline={} waterline={} dyn_raises={}\n",
            fmt(s.maxline),
            fmt(s.waterline),
            s.dyn_raises
        ),
        None => format!("  {side} {label}: (no such interval)\n"),
    }
}

/// Renders a [`DiffReport`] with the side-by-side summary table.
pub fn render_diff(report: &DiffReport, a: &Run, b: &Run) -> String {
    let mut s = String::new();
    let _ = writeln!(
        s,
        "diff: A = {} ({}), B = {} ({})",
        report.a_label,
        a.source.label(),
        report.b_label,
        b.source.label()
    );
    match &report.divergence {
        None => {
            let _ = writeln!(
                s,
                "no divergence: {} power-on interval(s) identical",
                report.a_intervals
            );
        }
        Some(d) => {
            let _ = writeln!(s, "first divergence: power-on interval {}", d.interval);
            for f in &d.fields {
                let _ = writeln!(s, "  {:<14} {} vs {}", f.field, f.a, f.b);
            }
            s.push_str(&state_line("A", "threshold state", d.a_state));
            s.push_str(&state_line("B", "threshold state", d.b_state));
        }
    }
    let _ = writeln!(s, "\nsummary:");
    let _ = writeln!(s, "  {:<22} {:>14} {:>14}", "metric", "A", "B");
    let rows: [(&str, u64, u64); 9] = [
        (
            "intervals",
            report.a_intervals as u64,
            report.b_intervals as u64,
        ),
        ("outages", a.counters.outages, b.counters.outages),
        (
            "checkpoints",
            a.counters.checkpoints,
            b.counters.checkpoints,
        ),
        (
            "reconfigurations",
            a.counters.reconfigurations,
            b.counters.reconfigurations,
        ),
        ("dyn_raises", a.counters.dyn_raises, b.counters.dyn_raises),
        (
            "dq_enqueues",
            a.counters.dq_enqueues,
            b.counters.dq_enqueues,
        ),
        ("dq_acks", a.counters.dq_acks, b.counters.dq_acks),
        ("dq_stalls", a.counters.dq_stalls, b.counters.dq_stalls),
        (
            "writebacks",
            a.counters.writebacks_issued,
            b.counters.writebacks_issued,
        ),
    ];
    for (name, va, vb) in rows {
        let _ = writeln!(s, "  {name:<22} {va:>14} {vb:>14}");
    }
    let _ = writeln!(
        s,
        "  {:<22} {:>14} {:>14}",
        "end_ps",
        a.end_ps(),
        b.end_ps()
    );
    for (name, ha, hb) in [
        (
            "outage_interval_ps",
            &a.histograms.outage_interval_ps,
            &b.histograms.outage_interval_ps,
        ),
        (
            "dirty_at_checkpoint",
            &a.histograms.dirty_at_checkpoint,
            &b.histograms.dirty_at_checkpoint,
        ),
        (
            "writeback_latency_ps",
            &a.histograms.writeback_latency_ps,
            &b.histograms.writeback_latency_ps,
        ),
    ] {
        let _ = writeln!(
            s,
            "  {:<22} {:>14.1} {:>14.1}  (mean)",
            name,
            ha.mean(),
            hb.mean()
        );
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::SourceFormat;
    use ehsim_obs::{Event, Observer, Recorder};

    fn run_with(flushed: &[u64], dyn_raise_in: Option<usize>) -> Run {
        let mut r = Recorder::default();
        r.event(
            0,
            Event::InitialThresholds {
                maxline: 6,
                waterline: 2,
            },
        );
        let mut t = 0u64;
        for (i, &f) in flushed.iter().enumerate() {
            r.event(t, Event::PowerOn { interval: i as u64 });
            if dyn_raise_in == Some(i) {
                r.event(t + 50, Event::DynRaise { maxline: 7 });
            }
            t += 100;
            r.event(
                t,
                Event::OutageBegin {
                    on_ps: 100,
                    voltage: 2.95,
                },
            );
            r.event(
                t,
                Event::CheckpointBegin {
                    dirty_lines: f as usize,
                },
            );
            t += 10;
            r.event(t, Event::CheckpointEnd { flushed_lines: f });
            r.event(t, Event::PowerOff);
            t += 40;
            r.event(t, Event::RestoreBegin);
            t += 5;
            r.event(t, Event::RestoreEnd);
        }
        r.event(
            t,
            Event::PowerOn {
                interval: flushed.len() as u64,
            },
        );
        let trace = r.finish(t + 25);
        Run::from_jsonl(&trace.jsonl()).unwrap()
    }

    #[test]
    fn self_diff_reports_zero_divergence() {
        let a = run_with(&[3, 2, 4], None);
        let report = diff_runs(&a, "a", &a, "a");
        assert!(report.identical());
        let text = render_diff(&report, &a, &a);
        assert!(text.contains("no divergence"), "{text}");
        assert!(text.contains("4 power-on interval(s)"), "{text}");
    }

    #[test]
    fn first_divergence_names_interval_field_and_threshold_state() {
        let a = run_with(&[3, 2, 4], None);
        let b = run_with(&[3, 5, 4], Some(1));
        let report = diff_runs(&a, "a", &b, "b");
        let d = report.divergence.as_ref().unwrap();
        assert_eq!(d.interval, 1);
        assert!(d.fields.iter().any(|f| f.field == "dirty_flushed"));
        assert!(d.fields.iter().any(|f| f.field == "dyn_raises"));
        assert_eq!(d.a_state.unwrap().maxline, Some(6));
        assert_eq!(d.b_state.unwrap().maxline, Some(7), "dyn raise moved it");
        let text = render_diff(&report, &a, &b);
        assert!(
            text.contains("first divergence: power-on interval 1"),
            "{text}"
        );
        assert!(text.contains("maxline=7"), "{text}");
    }

    #[test]
    fn early_ending_run_diverges_at_the_unmatched_interval() {
        let a = run_with(&[3, 2], None);
        let b = run_with(&[3, 2, 4], None);
        let report = diff_runs(&a, "a", &b, "b");
        let d = report.divergence.as_ref().unwrap();
        // Intervals 0 and 1 match; run A's final (RunEnd-closed)
        // interval 2 differs from B's checkpoint-closed interval 2.
        assert_eq!(d.interval, 2);
        assert!(!report.identical());
        assert_eq!(a.source, SourceFormat::Jsonl);
    }
}
