//! Voltage trajectory export: TSV and a small self-contained SVG in the
//! style of the paper's Fig 1 (capacitor voltage over time with the
//! named rails overlaid).

use ehsim_mem::Ps;
use std::fmt::Write as _;

/// Renders a voltage series as two-column TSV (`t_ps`, `volts`).
/// Voltages print with shortest round-trip formatting, so reloading the
/// TSV recovers bit-identical values.
pub fn voltage_tsv(series: &[(Ps, f64)]) -> String {
    let mut out = String::with_capacity(series.len() * 24 + 16);
    out.push_str("t_ps\tvolts\n");
    for &(t, v) in series {
        let _ = writeln!(out, "{t}\t{v}");
    }
    out
}

fn escape_xml(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '"' => out.push_str("&quot;"),
            c => out.push(c),
        }
    }
    out
}

/// Renders a voltage series as a self-contained SVG line chart.
///
/// `rails` overlays labelled horizontal threshold lines (e.g.
/// `[(3.0, "Von"), (2.9, "Vbackup"), (2.8, "Vmin")]`), mirroring the
/// paper's Fig 1. The output embeds no external resources and opens in
/// any browser.
pub fn voltage_svg(series: &[(Ps, f64)], title: &str, rails: &[(f64, &str)]) -> String {
    const W: f64 = 840.0;
    const H: f64 = 320.0;
    const ML: f64 = 64.0; // left margin (voltage axis)
    const MR: f64 = 16.0;
    const MT: f64 = 28.0; // top margin (title)
    const MB: f64 = 40.0; // bottom margin (time axis)

    let mut svg = String::with_capacity(series.len() * 12 + 2048);
    let _ = writeln!(
        svg,
        "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"{W}\" height=\"{H}\" \
         viewBox=\"0 0 {W} {H}\" font-family=\"sans-serif\" font-size=\"11\">"
    );
    let _ = writeln!(
        svg,
        "<rect width=\"{W}\" height=\"{H}\" fill=\"white\"/>\
         <text x=\"{}\" y=\"18\" text-anchor=\"middle\" font-size=\"13\">{}</text>",
        W / 2.0,
        escape_xml(title)
    );

    if series.is_empty() {
        let _ = writeln!(
            svg,
            "<text x=\"{}\" y=\"{}\" text-anchor=\"middle\" fill=\"#888\">\
             no voltage samples (run with voltage sampling enabled)</text></svg>",
            W / 2.0,
            H / 2.0
        );
        return svg;
    }

    let t0 = series.first().map_or(0, |&(t, _)| t) as f64;
    let t1 = series.last().map_or(1, |&(t, _)| t) as f64;
    let t_span = (t1 - t0).max(1.0);
    let mut v_lo = f64::INFINITY;
    let mut v_hi = f64::NEG_INFINITY;
    for &(_, v) in series {
        v_lo = v_lo.min(v);
        v_hi = v_hi.max(v);
    }
    for &(v, _) in rails {
        v_lo = v_lo.min(v);
        v_hi = v_hi.max(v);
    }
    let pad = ((v_hi - v_lo) * 0.05).max(0.01);
    v_lo -= pad;
    v_hi += pad;
    let v_span = v_hi - v_lo;

    let x = |t: f64| ML + (t - t0) / t_span * (W - ML - MR);
    let y = |v: f64| H - MB - (v - v_lo) / v_span * (H - MT - MB);

    // Axes.
    let _ = writeln!(
        svg,
        "<line x1=\"{ML}\" y1=\"{MT}\" x2=\"{ML}\" y2=\"{}\" stroke=\"#444\"/>\
         <line x1=\"{ML}\" y1=\"{}\" x2=\"{}\" y2=\"{}\" stroke=\"#444\"/>",
        H - MB,
        H - MB,
        W - MR,
        H - MB
    );
    // Voltage ticks (4 divisions).
    for i in 0..=4 {
        let v = v_lo + v_span * f64::from(i) / 4.0;
        let yy = y(v);
        let _ = writeln!(
            svg,
            "<line x1=\"{}\" y1=\"{yy:.1}\" x2=\"{ML}\" y2=\"{yy:.1}\" stroke=\"#444\"/>\
             <text x=\"{}\" y=\"{:.1}\" text-anchor=\"end\">{v:.2} V</text>",
            ML - 4.0,
            ML - 7.0,
            yy + 4.0
        );
    }
    // Time ticks (start / middle / end, in ms).
    for (frac, anchor) in [(0.0, "start"), (0.5, "middle"), (1.0, "end")] {
        let t = t0 + t_span * frac;
        let xx = x(t);
        let _ = writeln!(
            svg,
            "<line x1=\"{xx:.1}\" y1=\"{}\" x2=\"{xx:.1}\" y2=\"{}\" stroke=\"#444\"/>\
             <text x=\"{xx:.1}\" y=\"{}\" text-anchor=\"{anchor}\">{:.3} ms</text>",
            H - MB,
            H - MB + 4.0,
            H - MB + 18.0,
            t / 1e9
        );
    }
    // Rails.
    for &(v, label) in rails {
        let yy = y(v);
        let _ = writeln!(
            svg,
            "<line x1=\"{ML}\" y1=\"{yy:.1}\" x2=\"{}\" y2=\"{yy:.1}\" \
             stroke=\"#c44\" stroke-dasharray=\"5,4\"/>\
             <text x=\"{}\" y=\"{:.1}\" text-anchor=\"end\" fill=\"#c44\">{}</text>",
            W - MR,
            W - MR - 2.0,
            yy - 3.0,
            escape_xml(label)
        );
    }
    // The trajectory itself.
    svg.push_str("<polyline fill=\"none\" stroke=\"#26c\" stroke-width=\"1.2\" points=\"");
    for &(t, v) in series {
        let _ = write!(svg, "{:.1},{:.1} ", x(t as f64), y(v));
    }
    svg.push_str("\"/>\n</svg>\n");
    svg
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tsv_round_trips_voltages_exactly() {
        let series = vec![(0u64, 3.3), (1_000_000, 2.951_172_5), (2_000_000, 2.8)];
        let tsv = voltage_tsv(&series);
        let mut lines = tsv.lines();
        assert_eq!(lines.next(), Some("t_ps\tvolts"));
        for (&(t, v), line) in series.iter().zip(lines) {
            let (ts, vs) = line.split_once('\t').unwrap();
            assert_eq!(ts.parse::<u64>().unwrap(), t);
            assert_eq!(vs.parse::<f64>().unwrap(), v, "exact f64 round-trip");
        }
    }

    #[test]
    fn svg_renders_series_and_rails() {
        let series: Vec<(u64, f64)> = (0u32..100)
            .map(|i| {
                (
                    u64::from(i) * 1_000_000,
                    2.8 + 0.5 * f64::from(i % 10) / 10.0,
                )
            })
            .collect();
        let svg = voltage_svg(
            &series,
            "sha / WL-Cache <rf1>",
            &[(3.0, "Von"), (2.9, "Vbackup")],
        );
        assert!(svg.starts_with("<svg "));
        assert!(svg.ends_with("</svg>\n"));
        assert!(svg.contains("polyline"));
        assert!(svg.contains("Vbackup"));
        assert!(svg.contains("&lt;rf1&gt;"), "title is XML-escaped");
        assert_eq!(svg.matches("stroke-dasharray").count(), 2);
    }

    #[test]
    fn empty_series_renders_a_placeholder() {
        let svg = voltage_svg(&[], "empty", &[]);
        assert!(svg.contains("no voltage samples"));
        assert!(svg.ends_with("</svg>\n"));
    }
}
