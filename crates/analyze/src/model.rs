//! The typed trace model: [`Run`], its [`Span`]s and intervals, and the
//! loaders that build it from each on-disk trace format.

use crate::chrome;
use ehsim_mem::Ps;
use ehsim_obs::{
    parse_jsonl_line, Event, ObsCounters, ObsHistograms, Observer, Recorder, RunTrace,
    TraceInterval,
};

/// Which on-disk format a [`Run`] was loaded from. The formats carry
/// different amounts of information (see [`Run`]), so diff output names
/// the source.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SourceFormat {
    /// Chrome `trace_event` JSON written by `RunTrace::chrome_trace`
    /// (or `ehsim-cli run --trace-out`).
    ChromeJson,
    /// JSON-lines event stream written by the obs crate's
    /// `StreamingObserver` (or `RunTrace::jsonl`). Lossless.
    Jsonl,
    /// Per-interval metrics TSV written by
    /// `RunTrace::interval_metrics_tsv` (or `--metrics-out`).
    /// Interval rows only; no event timeline.
    IntervalTsv,
}

impl SourceFormat {
    /// Short human-readable label.
    pub fn label(self) -> &'static str {
        match self {
            SourceFormat::ChromeJson => "chrome-json",
            SourceFormat::Jsonl => "jsonl",
            SourceFormat::IntervalTsv => "interval-tsv",
        }
    }
}

/// One machine-lifecycle span reconstructed from the timeline: an `on`
/// interval, a JIT `checkpoint`, a `recharge`, or a `restore`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Span {
    /// Span name (`on`, `checkpoint`, `recharge`, `restore`).
    pub name: &'static str,
    /// Opening timestamp.
    pub start_ps: Ps,
    /// Closing timestamp.
    pub end_ps: Ps,
}

/// A loaded run: the unified trace model every loader produces and the
/// diff engine consumes.
///
/// Fidelity depends on the source format. JSONL is lossless — counters,
/// histograms and intervals reconcile bit-for-bit with the live
/// `Recorder` that produced it. Chrome JSON reconstructs the timeline
/// from the rendered spans/instants/counters; everything reconciles
/// except that DirtyQueue stale drops are folded into ACKs (the
/// `dq_occupancy` counter does not distinguish them) and line base
/// addresses are not recorded. The interval TSV carries only the
/// per-interval rows: the event list and spans are empty and only the
/// histograms derivable from rows (outage intervals, dirty-at-
/// checkpoint) are rebuilt.
#[derive(Debug, Clone)]
pub struct Run {
    /// Process name from the trace metadata, when the format carries
    /// one (Chrome JSON only).
    pub name: Option<String>,
    /// The format this run was loaded from.
    pub source: SourceFormat,
    /// Reconstructed `(timestamp, event)` timeline (empty for TSV).
    pub events: Vec<(Ps, Event)>,
    /// Event counts, as a live `Recorder` would have tallied them.
    pub counters: ObsCounters,
    /// Metric histograms.
    pub histograms: ObsHistograms,
    /// Per-power-on-interval rows.
    pub intervals: Vec<TraceInterval>,
    /// Machine lifecycle spans (empty for TSV).
    pub spans: Vec<Span>,
}

impl Run {
    /// Loads a trace file, auto-detecting its format from the content.
    ///
    /// # Errors
    ///
    /// Returns a message naming the file for I/O errors, or the parse
    /// error of the detected format.
    pub fn load(path: &str) -> Result<Run, String> {
        let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
        Run::parse(&text).map_err(|e| format!("{path}: {e}"))
    }

    /// Parses trace text, auto-detecting the format: Chrome JSON starts
    /// with a `traceEvents` object, JSONL lines start with `{"ts":`,
    /// and the interval TSV starts with its header row.
    ///
    /// # Errors
    ///
    /// Returns the detected format's parse error, or a message when no
    /// format matches.
    pub fn parse(text: &str) -> Result<Run, String> {
        let head = text.trim_start();
        if head.starts_with('{') && head.contains("\"traceEvents\"") {
            Run::from_chrome_json(text)
        } else if head.starts_with("{\"ts\":") {
            Run::from_jsonl(text)
        } else if head.starts_with("interval\t") {
            Run::from_interval_tsv(text)
        } else {
            Err("unrecognized trace format (expected Chrome trace JSON, \
                 JSONL events, or an interval-metrics TSV)"
                .to_string())
        }
    }

    /// Parses a JSON-lines event stream. Lossless: the rebuilt run
    /// reconciles exactly with the recording that wrote it.
    ///
    /// # Errors
    ///
    /// Returns the first malformed line, 1-indexed.
    pub fn from_jsonl(text: &str) -> Result<Run, String> {
        let mut events = Vec::new();
        for (i, line) in text.lines().enumerate() {
            if line.trim().is_empty() {
                continue;
            }
            let pair = parse_jsonl_line(line).map_err(|e| format!("line {}: {e}", i + 1))?;
            events.push(pair);
        }
        if events.is_empty() {
            return Err("no events in JSONL input".to_string());
        }
        Ok(Run::from_events(events, None, SourceFormat::Jsonl))
    }

    /// Parses Chrome `trace_event` JSON written by our exporter,
    /// reconstructing the event timeline from its spans, instants and
    /// counter tracks (see [`Run`] for the two documented lossy spots).
    ///
    /// # Errors
    ///
    /// Returns schema-validation errors (the input is checked with
    /// `validate_chrome_trace` semantics first) or reconstruction
    /// errors naming the offending line.
    pub fn from_chrome_json(text: &str) -> Result<Run, String> {
        chrome::parse(text)
    }

    /// Parses a per-interval metrics TSV. Only interval rows (plus the
    /// histograms derivable from them) are recovered; the event
    /// timeline is empty.
    ///
    /// # Errors
    ///
    /// Returns the first malformed row or an unrecognized header.
    pub fn from_interval_tsv(text: &str) -> Result<Run, String> {
        let mut lines = text.lines();
        let header = lines.next().ok_or("empty TSV input")?;
        let cols: Vec<&str> = header.split('\t').collect();
        let col = |name: &str| cols.iter().position(|c| *c == name);
        // The first 13 columns predate the energy columns; require
        // those, treat the rest as optional so old dumps still load.
        let need = |name: &str| col(name).ok_or_else(|| format!("missing TSV column `{name}`"));
        let c_interval = need("interval")?;
        let c_start = need("start_ps")?;
        let c_end = need("end_ps")?;
        let c_on = need("on_ps")?;
        let c_flushed = need("dirty_flushed")?;
        let c_cleanings = need("cleanings")?;
        let c_enqueues = need("enqueues")?;
        let c_acks = need("acks")?;
        let c_stalls = need("stalls")?;
        let c_drops = need("stale_drops")?;
        let c_raises = need("dyn_raises")?;
        let c_maxline = need("maxline")?;
        let c_waterline = need("waterline")?;
        let c_harv = col("harvested_pj");
        let c_cons = col("consumed_pj");
        let c_harv_cum = col("harvested_cum_pj");
        let c_cons_cum = col("consumed_cum_pj");

        let mut intervals = Vec::new();
        for (i, line) in lines.enumerate() {
            if line.is_empty() || line.starts_with('#') {
                continue; // histogram footer / comments
            }
            let n = i + 2;
            let f: Vec<&str> = line.split('\t').collect();
            let req = |c: usize| -> Result<&str, String> {
                f.get(c)
                    .copied()
                    .ok_or_else(|| format!("row {n}: missing column {c}"))
            };
            let num = |c: usize| -> Result<u64, String> {
                req(c)?.parse().map_err(|e| format!("row {n}: {e}"))
            };
            let opt_num = |c: usize| -> Result<Option<u64>, String> {
                let v = req(c)?;
                if v == "-" {
                    Ok(None)
                } else {
                    v.parse().map(Some).map_err(|e| format!("row {n}: {e}"))
                }
            };
            let opt_usize = |c: usize| -> Result<Option<usize>, String> {
                let v = req(c)?;
                if v == "-" {
                    Ok(None)
                } else {
                    v.parse().map(Some).map_err(|e| format!("row {n}: {e}"))
                }
            };
            let opt_f64 = |c: Option<usize>| -> Result<Option<f64>, String> {
                let Some(c) = c else { return Ok(None) };
                let v = req(c)?;
                if v == "-" {
                    Ok(None)
                } else {
                    v.parse().map(Some).map_err(|e| format!("row {n}: {e}"))
                }
            };
            intervals.push(TraceInterval {
                interval: num(c_interval)?,
                start_ps: num(c_start)?,
                end_ps: num(c_end)?,
                on_ps: num(c_on)?,
                dirty_flushed: opt_num(c_flushed)?,
                cleanings: num(c_cleanings)?,
                enqueues: num(c_enqueues)?,
                acks: num(c_acks)?,
                stalls: num(c_stalls)?,
                stale_drops: num(c_drops)?,
                dyn_raises: num(c_raises)?,
                maxline: opt_usize(c_maxline)?,
                waterline: opt_usize(c_waterline)?,
                harvested_delta_pj: opt_f64(c_harv)?,
                consumed_delta_pj: opt_f64(c_cons)?,
                harvested_cum_pj: opt_f64(c_harv_cum)?,
                consumed_cum_pj: opt_f64(c_cons_cum)?,
            });
        }
        if intervals.is_empty() {
            return Err("no interval rows in TSV input".to_string());
        }

        // Rebuild what the rows determine. A checkpoint-closed row is
        // one outage with an exact on-interval length and flush count;
        // the final RunEnd-closed row (dirty_flushed = `-`) is not.
        let mut counters = ObsCounters::default();
        let mut histograms = ObsHistograms::default();
        for row in &intervals {
            counters.power_ons += 1;
            counters.dq_enqueues += row.enqueues;
            counters.dq_acks += row.acks;
            counters.dq_stalls += row.stalls;
            counters.stale_drops += row.stale_drops;
            counters.dyn_raises += row.dyn_raises;
            counters.writebacks_issued += row.cleanings;
            if let Some(flushed) = row.dirty_flushed {
                counters.outages += 1;
                counters.checkpoints += 1;
                histograms.outage_interval_ps.record(row.on_ps);
                histograms.dirty_at_checkpoint.record(flushed);
            }
        }
        Ok(Run {
            name: None,
            source: SourceFormat::IntervalTsv,
            events: Vec::new(),
            counters,
            histograms,
            intervals,
            spans: Vec::new(),
        })
    }

    /// Builds a [`Run`] from a reconstructed event timeline by feeding
    /// it through a live [`Recorder`] — counters, histograms and
    /// intervals are therefore computed by the exact same code paths as
    /// during recording.
    pub(crate) fn from_events(
        events: Vec<(Ps, Event)>,
        name: Option<String>,
        source: SourceFormat,
    ) -> Run {
        let end = events.iter().map(|&(ts, _)| ts).max().unwrap_or(0);
        let mut rec = Recorder::default();
        for &(at, ev) in &events {
            rec.event(at, ev);
        }
        let trace = rec.finish(end);
        let intervals = trace.intervals();
        let spans = spans_of(&trace.events);
        Run {
            name,
            source,
            events: trace.events,
            counters: trace.counters,
            histograms: trace.histograms,
            intervals,
            spans,
        }
    }

    /// Reassembles the run as a `RunTrace`, e.g. to re-export a
    /// streamed JSONL capture as Chrome trace JSON
    /// (`ehsim-cli convert-trace`).
    pub fn to_trace(&self) -> RunTrace {
        RunTrace {
            events: self.events.clone(),
            counters: self.counters,
            histograms: self.histograms.clone(),
        }
    }

    /// The capacitor-voltage trajectory `(ts, volts)`, from opt-in
    /// `VoltageSample`s. Empty when the run was recorded without
    /// voltage sampling (or loaded from a TSV).
    pub fn voltage_series(&self) -> Vec<(Ps, f64)> {
        self.events
            .iter()
            .filter_map(|&(at, ev)| match ev {
                Event::VoltageSample { voltage } => Some((at, voltage)),
                _ => None,
            })
            .collect()
    }

    /// Total simulated time covered by the run (last event timestamp).
    pub fn end_ps(&self) -> Ps {
        self.events
            .iter()
            .map(|&(ts, _)| ts)
            .max()
            .or_else(|| self.intervals.last().map(|r| r.end_ps))
            .unwrap_or(0)
    }
}

/// Derives the machine lifecycle spans from an event timeline.
fn spans_of(events: &[(Ps, Event)]) -> Vec<Span> {
    let mut sorted: Vec<(Ps, Event)> = events.to_vec();
    sorted.sort_by_key(|&(ts, _)| ts);
    let mut spans = Vec::new();
    let mut open: Vec<(&'static str, Ps)> = Vec::new();
    let push = |spans: &mut Vec<Span>, open: &mut Vec<(&'static str, Ps)>, name, ts| {
        if let Some(pos) = open.iter().rposition(|&(n, _)| n == name) {
            let (_, start) = open.remove(pos);
            spans.push(Span {
                name,
                start_ps: start,
                end_ps: ts,
            });
        }
    };
    for &(ts, ev) in &sorted {
        match ev {
            Event::PowerOn { .. } => open.push(("on", ts)),
            Event::OutageBegin { .. } => push(&mut spans, &mut open, "on", ts),
            Event::CheckpointBegin { .. } => open.push(("checkpoint", ts)),
            Event::CheckpointEnd { .. } => push(&mut spans, &mut open, "checkpoint", ts),
            Event::PowerOff => open.push(("recharge", ts)),
            Event::RestoreBegin => {
                push(&mut spans, &mut open, "recharge", ts);
                open.push(("restore", ts));
            }
            Event::RestoreEnd => push(&mut spans, &mut open, "restore", ts),
            Event::RunEnd => {
                while let Some((name, start)) = open.pop() {
                    spans.push(Span {
                        name,
                        start_ps: start,
                        end_ps: ts,
                    });
                }
            }
            _ => {}
        }
    }
    spans
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_events() -> Vec<(Ps, Event)> {
        vec![
            (
                0,
                Event::InitialThresholds {
                    maxline: 6,
                    waterline: 2,
                },
            ),
            (0, Event::PowerOn { interval: 0 }),
            (10, Event::DqEnqueue { base: 64 }),
            (
                20,
                Event::WritebackIssued {
                    base: 64,
                    ack_at: 120,
                },
            ),
            (120, Event::DqAck { base: 64 }),
            (
                500,
                Event::OutageBegin {
                    on_ps: 500,
                    voltage: 2.96,
                },
            ),
            (500, Event::CheckpointBegin { dirty_lines: 1 }),
            (
                550,
                Event::EnergySample {
                    harvested_pj: 10.5,
                    consumed_pj: 8.25,
                },
            ),
            (550, Event::CheckpointEnd { flushed_lines: 1 }),
            (550, Event::PowerOff),
            (900, Event::RestoreBegin),
            (920, Event::RestoreEnd),
            (920, Event::PowerOn { interval: 1 }),
            (
                1000,
                Event::EnergySample {
                    harvested_pj: 11.0,
                    consumed_pj: 9.0,
                },
            ),
            (1000, Event::RunEnd),
        ]
    }

    fn sample_trace() -> RunTrace {
        let mut rec = Recorder::default();
        for (at, ev) in sample_events() {
            rec.event(at, ev);
        }
        rec.finish(1000)
    }

    #[test]
    fn jsonl_round_trip_reconciles_exactly() {
        let trace = sample_trace();
        let run = Run::from_jsonl(&trace.jsonl()).unwrap();
        assert_eq!(run.source, SourceFormat::Jsonl);
        assert_eq!(run.events, trace.events);
        assert_eq!(run.counters, trace.counters);
        assert_eq!(run.histograms, trace.histograms);
        assert_eq!(run.intervals, trace.intervals());
    }

    #[test]
    fn interval_tsv_round_trip_recovers_rows() {
        let trace = sample_trace();
        let run = Run::from_interval_tsv(&trace.interval_metrics_tsv()).unwrap();
        assert_eq!(run.source, SourceFormat::IntervalTsv);
        assert_eq!(run.intervals, trace.intervals());
        // Energy columns survive with bit-exact values.
        assert_eq!(run.intervals[0].harvested_delta_pj, Some(10.5));
        assert_eq!(run.intervals[0].consumed_cum_pj, Some(8.25));
        assert_eq!(run.intervals[1].harvested_delta_pj, Some(11.0 - 10.5));
        assert_eq!(run.counters.outages, 1);
        assert_eq!(run.counters.power_ons, 2);
        assert_eq!(run.histograms.dirty_at_checkpoint.sum(), 1);
    }

    #[test]
    fn parse_auto_detects_all_three_formats() {
        let trace = sample_trace();
        let j = Run::parse(&trace.chrome_trace("x")).unwrap();
        assert_eq!(j.source, SourceFormat::ChromeJson);
        let l = Run::parse(&trace.jsonl()).unwrap();
        assert_eq!(l.source, SourceFormat::Jsonl);
        let t = Run::parse(&trace.interval_metrics_tsv()).unwrap();
        assert_eq!(t.source, SourceFormat::IntervalTsv);
        assert!(Run::parse("garbage").is_err());
    }

    #[test]
    fn spans_reconstruct_the_lifecycle() {
        let run = Run::from_jsonl(&sample_trace().jsonl()).unwrap();
        let names: Vec<&str> = run.spans.iter().map(|s| s.name).collect();
        assert_eq!(names, ["on", "checkpoint", "recharge", "restore", "on"]);
        let on0 = &run.spans[0];
        assert_eq!((on0.start_ps, on0.end_ps), (0, 500));
        assert_eq!(run.end_ps(), 1000);
    }

    #[test]
    fn voltage_series_surfaces_samples() {
        let mut rec = Recorder::with_voltage_sampling();
        rec.event(5, Event::VoltageSample { voltage: 3.25 });
        rec.event(9, Event::VoltageSample { voltage: 3.125 });
        let run = Run::from_jsonl(&rec.finish(10).jsonl()).unwrap();
        assert_eq!(run.voltage_series(), vec![(5, 3.25), (9, 3.125)]);
    }
}
