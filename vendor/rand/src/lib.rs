//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this vendored
//! stub provides the small, deterministic subset of the rand 0.10 API
//! the workspace uses: [`rngs::StdRng`], [`SeedableRng::seed_from_u64`],
//! and [`RngExt::random_range`] over primitive ranges.
//!
//! The generator is splitmix64 — statistically solid for simulation
//! seeding and fully deterministic across platforms, which is all the
//! trace synthesiser needs. It is NOT the upstream `StdRng` (ChaCha12),
//! so sequences differ from builds against the real crate; every
//! consumer in this workspace only relies on determinism, not on
//! specific sequences.

use core::ops::Range;

/// A source of random 64-bit words.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// RNGs constructible from a seed.
pub trait SeedableRng: Sized {
    /// Creates an RNG seeded from a single `u64`.
    fn seed_from_u64(state: u64) -> Self;
}

/// Convenience sampling methods, mirroring `rand::Rng`.
pub trait RngExt: RngCore {
    /// Samples a value uniformly from `range`.
    fn random_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }
}

impl<T: RngCore> RngExt for T {}

/// Ranges that can produce uniform samples of `T`.
pub trait SampleRange<T> {
    /// Draws one uniform sample from the range.
    fn sample_from<R: RngCore>(self, rng: &mut R) -> T;
}

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range");
        // 53 uniform mantissa bits in [0, 1).
        let u01 = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        self.start + u01 * (self.end - self.start)
    }
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end - self.start) as u64;
                // Modulo bias is < 2^-40 for every span this workspace
                // uses; acceptable for a deterministic test stub.
                self.start + (rng.next_u64() % span) as $t
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize);

/// Concrete RNG implementations.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic splitmix64 generator standing in for `StdRng`.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            // One scramble round so nearby seeds diverge immediately.
            let mut rng = Self {
                state: state ^ 0x5851_f42d_4c95_7f2d,
            };
            let _ = rng.next_u64();
            rng
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;
        use crate::RngExt;

        #[test]
        fn deterministic_across_instances() {
            let mut a = StdRng::seed_from_u64(42);
            let mut b = StdRng::seed_from_u64(42);
            for _ in 0..100 {
                assert_eq!(a.next_u64(), b.next_u64());
            }
        }

        #[test]
        fn seeds_diverge() {
            let mut a = StdRng::seed_from_u64(1);
            let mut b = StdRng::seed_from_u64(2);
            assert_ne!(a.next_u64(), b.next_u64());
        }

        #[test]
        fn f64_range_in_bounds() {
            let mut r = StdRng::seed_from_u64(7);
            for _ in 0..10_000 {
                let x = r.random_range(2.0..3.0);
                assert!((2.0..3.0).contains(&x));
            }
        }

        #[test]
        fn int_range_in_bounds() {
            let mut r = StdRng::seed_from_u64(9);
            for _ in 0..10_000 {
                let x = r.random_range(5u32..17);
                assert!((5..17).contains(&x));
            }
        }
    }
}
