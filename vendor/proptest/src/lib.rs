//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no crates.io access, so this vendored stub
//! implements the subset of proptest used by the workspace tests:
//! the [`proptest!`] macro (with optional `#![proptest_config(..)]`),
//! `prop_assert!`/`prop_assert_eq!`, [`prop_oneof!`], [`any`],
//! range/tuple/`prop::collection::vec` strategies, and `prop_map`.
//!
//! Semantics: each test body runs for `ProptestConfig::cases` cases
//! (256 by default, matching upstream) with inputs drawn from a
//! deterministic splitmix64 generator.
//!
//! **Known gap vs upstream:** there is no shrinking — a failing case
//! panics with the generated inputs visible in the assertion message
//! instead of being minimized first, so counterexamples may be larger
//! than the real proptest would report. Determinism across runs and
//! platforms is guaranteed, which is what the simulation tests rely
//! on.

/// Configuration and RNG for the deterministic runner.
pub mod test_runner {
    /// Runner configuration (subset of the real `ProptestConfig`).
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of generated cases per test.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Config running `cases` cases per test.
        pub fn with_cases(cases: u32) -> Self {
            Self { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            // Upstream proptest's default case count.
            Self { cases: 256 }
        }
    }

    /// Deterministic splitmix64 generator used for input synthesis.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// RNG for the `case`-th iteration of a test.
        pub fn for_case(case: u32) -> Self {
            Self {
                state: 0x7072_6f70_7465_7374u64 ^ ((case as u64) << 32 | 0x9e37),
            }
        }

        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// Uniform f64 in [0, 1).
        pub fn next_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }

        /// Uniform u64 in [0, bound).
        pub fn below(&mut self, bound: u64) -> u64 {
            assert!(bound > 0, "empty range");
            self.next_u64() % bound
        }
    }
}

/// Value generators ("strategies").
pub mod strategy {
    use crate::test_runner::TestRng;
    use core::ops::Range;

    /// A generator of values of type `Value`.
    ///
    /// Object-safe subset of the real trait: strategies generate one
    /// value per call; there is no shrinking tree.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Generates one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Type-erases this strategy.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    /// A type-erased strategy.
    pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            (**self).generate(rng)
        }
    }

    /// Always generates a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// See [`Strategy::prop_map`].
    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Uniform choice among several strategies ([`crate::prop_oneof!`]).
    pub struct Union<T> {
        options: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        /// A union over `options` (must be non-empty).
        pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
            Self { options }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let ix = rng.below(self.options.len() as u64) as usize;
            self.options[ix].generate(rng)
        }
    }

    impl Strategy for Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty range");
            self.start + rng.next_f64() * (self.end - self.start)
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range");
                    let span = (self.end - self.start) as u64;
                    self.start + rng.below(span) as $t
                }
            }
        )*};
    }

    int_range_strategy!(u8, u16, u32, u64, usize);

    macro_rules! tuple_strategy {
        ($($s:ident => $v:ident),+) => {
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    #[allow(non_snake_case)]
                    let ($($v,)+) = self;
                    ($($v.generate(rng),)+)
                }
            }
        };
    }

    tuple_strategy!(A => a);
    tuple_strategy!(A => a, B => b);
    tuple_strategy!(A => a, B => b, C => c);
    tuple_strategy!(A => a, B => b, C => c, D => d);
}

/// `any::<T>()` support.
pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use core::marker::PhantomData;

    /// Types with a canonical full-domain generator.
    pub trait Arbitrary {
        /// Generates one arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> f64 {
            rng.next_f64()
        }
    }

    /// The strategy returned by [`any`].
    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// A strategy over the whole domain of `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

/// Collection strategies (`prop::collection::vec`).
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use core::ops::Range;

    /// Strategy for `Vec`s of `element` values with a length in `len`.
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    /// Generates vectors whose length is drawn from `len`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        assert!(len.start < len.end, "empty length range");
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.len.end - self.len.start) as u64;
            let n = self.len.start + rng.below(span) as usize;
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// The `prop` path alias used as `prop::collection::vec(..)`.
pub mod prop {
    pub use crate::collection;
    pub use crate::strategy;
}

/// One-stop imports, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::prop;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Asserts a condition inside a proptest body.
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// Asserts equality inside a proptest body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// Asserts inequality inside a proptest body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($arm)),+
        ])
    };
}

/// Binds the parameter list of a proptest test, then runs the body.
/// Internal implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_bind {
    ($rng:ident, () $body:block) => { $body };
    ($rng:ident, ($pat:pat in $strat:expr, $($rest:tt)*) $body:block) => {{
        let __strategy = $strat;
        let $pat = $crate::strategy::Strategy::generate(&__strategy, &mut $rng);
        $crate::__proptest_bind!($rng, ($($rest)*) $body)
    }};
    ($rng:ident, ($pat:pat in $strat:expr) $body:block) => {{
        let __strategy = $strat;
        let $pat = $crate::strategy::Strategy::generate(&__strategy, &mut $rng);
        $body
    }};
    ($rng:ident, ($id:ident : $ty:ty, $($rest:tt)*) $body:block) => {{
        let $id: $ty = <$ty as $crate::arbitrary::Arbitrary>::arbitrary(&mut $rng);
        $crate::__proptest_bind!($rng, ($($rest)*) $body)
    }};
    ($rng:ident, ($id:ident : $ty:ty) $body:block) => {{
        let $id: $ty = <$ty as $crate::arbitrary::Arbitrary>::arbitrary(&mut $rng);
        $body
    }};
}

/// Declares deterministic property tests.
///
/// Supports an optional leading `#![proptest_config(expr)]`, then any
/// number of `#[test] fn name(params) { body }` items whose parameters
/// are either `pattern in strategy` or `ident: Type` (via
/// [`arbitrary::Arbitrary`]).
#[macro_export]
macro_rules! proptest {
    (@body ($cfg:expr) $($(#[$meta:meta])* fn $name:ident($($params:tt)*) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __cfg: $crate::test_runner::ProptestConfig = $cfg;
                for __case in 0..__cfg.cases {
                    let mut __rng = $crate::test_runner::TestRng::for_case(__case);
                    $crate::__proptest_bind!(__rng, ($($params)*) $body);
                }
            }
        )*
    };
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@body ($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@body ($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(x in 3u32..17, y in 0.0f64..2.0) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((0.0..2.0).contains(&y));
        }

        #[test]
        fn mixed_params(a in 0usize..4, b: u64) {
            prop_assert!(a < 4);
            let _ = b;
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(7))]

        /// Doc comments on cases must be accepted.
        #[test]
        fn oneof_and_vec(
            v in prop::collection::vec(prop_oneof![(0u32..4).prop_map(|x| x * 2), 10u32..12], 2..9),
        ) {
            prop_assert!((2..9).contains(&v.len()));
            for x in v {
                prop_assert!(x % 2 == 0 || (10..12).contains(&x));
            }
        }
    }

    #[test]
    fn any_is_deterministic_per_case() {
        let mut a = crate::test_runner::TestRng::for_case(3);
        let mut b = crate::test_runner::TestRng::for_case(3);
        assert_eq!(u64::arbitrary(&mut a), u64::arbitrary(&mut b));
    }
}
