//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no crates.io access, so this vendored stub
//! provides the subset of the criterion 0.5 API the workspace benches
//! use: `Criterion` with `sample_size`/`warm_up_time`/`measurement_time`
//! builders, `bench_function`, `benchmark_group`, `Bencher::iter` /
//! `iter_batched`, `black_box`, and the `criterion_group!` /
//! `criterion_main!` macros.
//!
//! Measurement model: each benchmark runs its routine for a handful of
//! timed iterations (scaled down from the configured sample size) and
//! prints the mean per-iteration wall time. This keeps `cargo test`
//! (which runs `harness = false` bench binaries) fast while still
//! exercising every benchmarked code path and producing ballpark
//! numbers for local comparisons.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Timing sink handed to benchmark closures.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

/// Batch sizing hint for [`Bencher::iter_batched`]; ignored by the stub.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration setup output.
    SmallInput,
    /// Large per-iteration setup output.
    LargeInput,
    /// One batch per iteration.
    PerIteration,
}

impl Bencher {
    /// Times `routine` over the configured iteration count.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }

    /// Times `routine` with untimed fresh inputs from `setup`.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let mut elapsed = Duration::ZERO;
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            elapsed += start.elapsed();
        }
        self.elapsed = elapsed;
    }
}

/// Entry point mirroring `criterion::Criterion`.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self { sample_size: 10 }
    }
}

impl Criterion {
    /// Sets the nominal sample count (the stub scales this down).
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n;
        self
    }

    /// Warm-up budget; accepted and ignored by the stub.
    pub fn warm_up_time(self, _d: Duration) -> Self {
        self
    }

    /// Measurement budget; accepted and ignored by the stub.
    pub fn measurement_time(self, _d: Duration) -> Self {
        self
    }

    fn iters(&self) -> u64 {
        // A fraction of the configured samples: enough for a ballpark
        // mean without making `cargo test` crawl.
        (self.sample_size as u64).clamp(2, 10)
    }

    /// Runs one named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher {
            iters: self.iters(),
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        let per_iter = b.elapsed.as_nanos() as f64 / b.iters.max(1) as f64;
        println!("bench {name:<40} {:>12.0} ns/iter", per_iter);
        self
    }

    /// Opens a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
        }
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Runs one benchmark within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        let full = format!("{}/{}", self.name, name);
        self.criterion.bench_function(&full, f);
        self
    }

    /// Closes the group.
    pub fn finish(self) {}
}

/// Declares a benchmark group function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            $(
                {
                    let mut criterion: $crate::Criterion = $config;
                    $target(&mut criterion);
                }
            )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the bench binary's `main`, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_routine() {
        let mut ran = 0u64;
        Criterion::default()
            .sample_size(4)
            .bench_function("smoke", |b| b.iter(|| ran += 1));
        assert!(ran > 0);
    }

    #[test]
    fn iter_batched_uses_setup() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("g");
        g.bench_function("batched", |b| {
            b.iter_batched(|| vec![1u8; 8], |v| v.len(), BatchSize::SmallInput)
        });
        g.finish();
    }
}
