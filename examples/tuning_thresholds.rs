//! Exploring WL-Cache's knobs: static maxline settings vs the adaptive
//! and dynamic managers, on a good source (thermal) and a poor one
//! (RFID-class RF) — the §4/§6.6 story in miniature.
//!
//! ```sh
//! cargo run --release --example tuning_thresholds
//! ```

use wl_cache_repro::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let workload = Patricia::small();
    for trace in [TraceKind::Rf3, TraceKind::Thermal] {
        println!("== {} ==", trace.label());
        let base = Simulator::new(SimConfig::nvsram().with_trace(trace)).run(&workload)?;
        for maxline in [2usize, 4, 6, 8] {
            let cfg = SimConfig::wl_cache_static(maxline).with_trace(trace);
            let r = Simulator::new(cfg).run(&workload)?;
            println!(
                "  static maxline {maxline}: {:.3}x vs NVSRAM ({} outages)",
                r.speedup_vs(&base),
                r.outages
            );
        }
        for (label, cfg) in [
            ("adaptive", SimConfig::wl_cache()),
            ("dynamic ", SimConfig::wl_cache_dyn()),
        ] {
            let r = Simulator::new(cfg.with_trace(trace)).run(&workload)?;
            let wl = r.wl.as_ref().expect("wl report");
            println!(
                "  {label}        : {:.3}x vs NVSRAM ({} outages, {} reconfigs, maxline {}..{})",
                r.speedup_vs(&base),
                r.outages,
                wl.reconfigurations,
                wl.maxline_min,
                wl.maxline_max,
            );
        }
        println!();
    }
    Ok(())
}
