//! Quickstart: run one benchmark on WL-Cache, with and without power
//! failures, and print the report.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use wl_cache_repro::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A real workload from the paper's suite: SHA-1 over a generated
    // message. Every load/store goes through the simulated hierarchy.
    let workload = Sha::with_scale(Scale::Default);

    // 1. Stable power: no failures ever happen.
    let calm = Simulator::new(SimConfig::wl_cache()).run(&workload)?;
    println!(
        "[no failures] {} on {}: {:.3} ms, {} instructions, checksum {:#x}",
        calm.workload,
        calm.design,
        calm.total_seconds() * 1e3,
        calm.instructions,
        calm.checksum,
    );

    // 2. The paper's RF home trace: frequent power failures, JIT
    // checkpointing, adaptive maxline management.
    let cfg = SimConfig::wl_cache()
        .with_trace(TraceKind::Rf1)
        .with_verify();
    let stormy = Simulator::new(cfg).run(&workload)?;
    println!(
        "[RF trace 1 ] {} on {}: {:.3} ms total ({:.3} ms off), {} outages",
        stormy.workload,
        stormy.design,
        stormy.total_seconds() * 1e3,
        stormy.off_time_ps as f64 / 1e9,
        stormy.outages,
    );
    let wl = stormy.wl.as_ref().expect("WL-Cache report");
    println!(
        "              maxline range {}..{}, {} reconfigurations, {:.2} dirty lines/checkpoint",
        wl.maxline_min, wl.maxline_max, wl.reconfigurations, wl.avg_dirty_at_checkpoint,
    );

    // The checksum must be identical: crash consistency means power
    // failures are invisible to the program's results.
    assert_eq!(calm.checksum, stormy.checksum);
    println!("checksums match across {} power failures ✓", stormy.outages);
    Ok(())
}
