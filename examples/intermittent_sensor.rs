//! A domain scenario: an intermittently-powered sensor node that
//! filters samples, logs them to a ring buffer and maintains a rolling
//! digest — written as a *custom* workload against the `Bus` trait, the
//! way a downstream user would model their own firmware.
//!
//! ```sh
//! cargo run --release --example intermittent_sensor
//! ```

use wl_cache_repro::prelude::*;

/// A sensor loop: sample → IIR filter → ring-buffer log → digest.
struct SensorNode {
    samples: u32,
}

impl Workload for SensorNode {
    fn name(&self) -> &str {
        "sensor-node"
    }

    fn mem_bytes(&self) -> u32 {
        64 * 1024
    }

    fn run(&self, bus: &mut dyn Bus) -> u64 {
        const RING: u32 = 0;
        const RING_LEN: u32 = 1024; // u32 slots
        const STATE: u32 = RING_LEN * 4; // filter state + digest

        bus.store_u32(STATE, 0); // filter accumulator
        bus.store_u32(STATE + 4, 0x811c_9dc5); // FNV digest
        for t in 0..self.samples {
            // Synthetic ADC reading.
            let raw = (t.wrapping_mul(2_654_435_761) >> 20) & 0xfff;
            bus.compute(5); // ADC conversion bookkeeping

            // Single-pole IIR low-pass filter, state in NVM-backed RAM.
            let acc = bus.load_u32(STATE);
            let filtered = acc - (acc >> 3) + raw;
            bus.store_u32(STATE, filtered);
            bus.compute(3);

            // Log to the ring buffer.
            bus.store_u32(RING + (t % RING_LEN) * 4, filtered);

            // Rolling digest over the filtered signal.
            let d = bus.load_u32(STATE + 4);
            bus.store_u32(STATE + 4, (d ^ filtered).wrapping_mul(0x0100_0193));
            bus.compute(2);
        }
        u64::from(bus.load_u32(STATE + 4))
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let node = SensorNode { samples: 50_000 };
    println!("sensor firmware on each cache design, RF office trace (trace 2):\n");
    println!(
        "{:<15} {:>10} {:>9} {:>10} {:>12}",
        "design", "time (ms)", "outages", "off (%)", "NVM writes"
    );
    let mut digest = None;
    for cfg in SimConfig::all_designs() {
        let r = Simulator::new(cfg.with_trace(TraceKind::Rf2).with_verify()).run(&node)?;
        println!(
            "{:<15} {:>10.2} {:>9} {:>9.0}% {:>11}B",
            r.design,
            r.total_seconds() * 1e3,
            r.outages,
            r.off_time_ps as f64 / r.total_time_ps as f64 * 100.0,
            r.cache.nvm_write_bytes,
        );
        // Every design must compute the same digest despite losing
        // power dozens of times.
        let d = *digest.get_or_insert(r.checksum);
        assert_eq!(d, r.checksum, "{} corrupted the log", r.design);
    }
    println!("\nall designs agree on the sensor digest ✓");
    Ok(())
}
