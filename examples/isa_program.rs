//! Instruction-level simulation: assemble a program with the
//! `ehsim-isa` frontend and run it on the energy-harvesting machine —
//! instruction fetches and data accesses all travel through the cache
//! under power failures.
//!
//! ```sh
//! cargo run --release --example isa_program
//! ```

use wl_cache_repro::ehsim_isa::{programs, Assembler, IsaWorkload, Reg::*};
use wl_cache_repro::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A library program: CRC-32 over 2 kB, written in assembly.
    let crc = programs::crc32(2048);
    println!("running {} on WL-Cache under RF trace 1...", crc.name());
    let cfg = SimConfig::wl_cache()
        .with_trace(TraceKind::Rf1)
        .with_verify();
    let r = Simulator::new(cfg).run(&crc)?;
    println!(
        "  crc32 = {:#010x} (reference {:#010x}), {} instructions retired, {} outages",
        r.checksum as u32,
        programs::crc32_reference(2048),
        r.instructions,
        r.outages,
    );
    assert_eq!(r.checksum as u32, programs::crc32_reference(2048));

    // A hand-written program: count set bits in a 64-word table.
    let mut asm = Assembler::new();
    let base = 0x1000u32;
    asm.li(R1, base);
    asm.li(R2, 64); // words
    asm.addi(R3, R0, 0); // i
    let fill = asm.new_label();
    asm.bind(fill);
    asm.mul(R4, R3, R3);
    asm.xori(R4, R4, 0x35a);
    asm.slli(R5, R3, 2);
    asm.add(R5, R5, R1);
    asm.sw(R4, R5, 0);
    asm.addi(R3, R3, 1);
    asm.bltu(R3, R2, fill);

    asm.addi(R11, R0, 0); // popcount accumulator
    asm.addi(R3, R0, 0);
    let outer = asm.new_label();
    let bits = asm.new_label();
    let skip = asm.new_label();
    asm.bind(outer);
    asm.slli(R5, R3, 2);
    asm.add(R5, R5, R1);
    asm.lw(R4, R5, 0);
    asm.bind(bits);
    asm.andi(R6, R4, 1);
    asm.beq(R6, R0, skip);
    asm.addi(R11, R11, 1);
    asm.bind(skip);
    asm.srli(R4, R4, 1);
    asm.bne(R4, R0, bits);
    asm.addi(R3, R3, 1);
    asm.bltu(R3, R2, outer);
    asm.halt();

    let popcount = IsaWorkload::new("popcount", asm.assemble()?, 8192);
    let expected: u32 = (0..64u32)
        .map(|i| (i.wrapping_mul(i) ^ 0x35a).count_ones())
        .sum();

    println!("\npopcount across every cache design (RF trace 3):");
    for cfg in SimConfig::all_designs() {
        let r = Simulator::new(cfg.with_trace(TraceKind::Rf3).with_verify()).run(&popcount)?;
        println!(
            "  {:<15} {:>8} instrs {:>3} outages → {} set bits",
            r.design, r.instructions, r.outages, r.checksum
        );
        assert_eq!(r.checksum, u64::from(expected));
    }
    println!("\nall designs agree with the host-computed popcount ({expected}) ✓");
    Ok(())
}
