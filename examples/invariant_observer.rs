//! Custom-observer cookbook: a runtime invariant monitor.
//!
//! The model checker in `crates/verify` proves the §5 protocol
//! invariants over an *abstract* state space; this example is the
//! dynamic twin — a custom [`Observer`] that shadows the DirtyQueue
//! from the event stream of a *real* simulation and asserts, live at
//! every event, that occupancy never exceeds `maxline`.
//!
//! ```sh
//! cargo run --release --example invariant_observer
//! ```

use std::sync::{Arc, Mutex};
use wl_cache_repro::ehsim::Event;
use wl_cache_repro::ehsim_obs::Observer;
use wl_cache_repro::prelude::*;

/// What the monitor learned, shared with `main` across the run (the
/// observer itself is consumed by the machine).
#[derive(Debug, Default, Clone, Copy)]
struct DqStats {
    maxline: usize,
    peak: i64,
    events: u64,
    checks: u64,
}

/// Shadows the DirtyQueue occupancy and the current `maxline` from
/// observable events alone (the same bookkeeping the Chrome-trace
/// exporter uses for its `dq_occupancy` counter track).
#[derive(Debug, Default)]
struct DqInvariantMonitor {
    occupancy: i64,
    stats: Arc<Mutex<DqStats>>,
}

impl Observer for DqInvariantMonitor {
    fn event(&mut self, at: u64, ev: Event) {
        let Ok(mut stats) = self.stats.lock() else {
            return;
        };
        stats.events += 1;
        match ev {
            Event::InitialThresholds { maxline, .. }
            | Event::Reconfigure { maxline, .. }
            | Event::DynRaise { maxline } => stats.maxline = maxline,
            Event::DqEnqueue { .. } => self.occupancy += 1,
            Event::DqAck { .. } => self.occupancy = (self.occupancy - 1).max(0),
            Event::DqStaleDrop { dropped } => {
                self.occupancy = (self.occupancy - dropped as i64).max(0)
            }
            // The JIT checkpoint flushes the queue wholesale.
            Event::CheckpointEnd { .. } => self.occupancy = 0,
            _ => return,
        }
        stats.peak = stats.peak.max(self.occupancy);
        stats.checks += 1;
        // The live invariant — the runtime twin of the model checker's
        // I2 (`DirtyQueue occupancy ≤ maxline`).
        assert!(
            self.occupancy <= stats.maxline as i64,
            "t={at}: DirtyQueue occupancy {} exceeds maxline {}",
            self.occupancy,
            stats.maxline
        );
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // FFT under the paper's rf3 trace: frequent outages, heavy
    // DirtyQueue churn — the harshest schedule for the invariant.
    let workload = all23(Scale::Small)
        .into_iter()
        .find(|w| w.name() == "FFT_i")
        .ok_or("FFT_i kernel missing")?;

    let stats = Arc::new(Mutex::new(DqStats::default()));
    let monitor = DqInvariantMonitor {
        occupancy: 0,
        stats: Arc::clone(&stats),
    };

    let cfg = SimConfig::wl_cache().with_trace(TraceKind::Rf3);
    let (report, _machine) =
        Simulator::new(cfg).run_with(workload.as_ref(), ObserverBox::custom(monitor))?;

    let s = *stats.lock().map_err(|_| "monitor mutex poisoned")?;
    assert!(
        s.checks > 0,
        "the monitor must have seen DirtyQueue traffic"
    );
    println!(
        "{} on {}: {} outages, {} events observed",
        report.workload, report.design, report.outages, s.events
    );
    println!(
        "DirtyQueue occupancy ≤ maxline held at all {} checks (peak {} of maxline {})",
        s.checks, s.peak, s.maxline
    );
    Ok(())
}
