//! Custom-observer cookbook: streaming a trace with constant memory.
//!
//! The in-memory [`Recorder`] behind `Simulator::run_traced` keeps the
//! whole timeline in RAM — fine for a paper kernel, wasteful for a
//! long-horizon sensor run. This recipe streams the same timeline to
//! disk as JSON-lines through the bounded-buffer `StreamingObserver`,
//! proves the buffer never grew past its capacity, then reloads the
//! file with `ehsim-analyze` and diffs it against itself (the
//! command-line twin is `ehsim-cli run --stream-out` followed by
//! `ehsim-cli diff-traces`).
//!
//! ```sh
//! cargo run --release --example streaming_trace
//! ```

use wl_cache_repro::ehsim_analyze::{diff_runs, render_diff, Run};
use wl_cache_repro::ehsim_obs::{StreamingObserver, DEFAULT_STREAM_CAPACITY};
use wl_cache_repro::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let workload = all23(Scale::Small)
        .into_iter()
        .find(|w| w.name() == "FFT_i")
        .ok_or("FFT_i kernel missing")?;

    let path = std::env::temp_dir().join("streaming_trace_example.jsonl");
    let observer = StreamingObserver::to_path(&path)?;
    // The observer is consumed by the machine; a shared stats handle
    // survives it (same pattern as examples/invariant_observer.rs).
    let stats = observer.stats_handle();

    let cfg = SimConfig::wl_cache().with_trace(TraceKind::Rf3);
    let (report, _machine) =
        Simulator::new(cfg).run_with(workload.as_ref(), ObserverBox::custom(observer))?;

    let snap = stats.lock().map_err(|_| "stream stats poisoned")?.clone();
    if let Some(err) = snap.io_error {
        return Err(format!("stream error: {err}").into());
    }
    println!(
        "{} on {}: {} outages, {} events streamed to {}",
        report.workload,
        report.design,
        report.outages,
        snap.events,
        path.display()
    );
    println!(
        "peak buffer {} of capacity {} ({} flushes) — constant memory",
        snap.peak_buffered, DEFAULT_STREAM_CAPACITY, snap.flushes
    );

    // The streamed file is a complete, lossless record: reload it and
    // diff it against itself. Any real A/B experiment replaces one side
    // with a second capture.
    let run = Run::load(&path.display().to_string())?;
    assert_eq!(run.counters, snap.counters, "stream reconciles losslessly");
    let diff = diff_runs(&run, "capture", &run, "capture");
    print!("{}", render_diff(&diff, &run, &run));

    std::fs::remove_file(&path)?;
    Ok(())
}
