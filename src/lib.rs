//! Umbrella crate for the WL-Cache reproduction workspace.
//!
//! This crate re-exports the workspace's public crates so that the
//! `examples/` and `tests/` at the repository root can exercise the full
//! stack through a single dependency. Library users should depend on the
//! individual crates directly:
//!
//! - [`wl_cache`] — the paper's contribution (DirtyQueue, thresholds,
//!   write policy, adaptive management).
//! - [`ehsim`] — the energy-harvesting system simulator.
//! - [`ehsim_cache`] — cache substrate and baseline designs.
//! - [`ehsim_mem`] — NVM model, functional memory, the [`ehsim_mem::Bus`]
//!   trait.
//! - [`ehsim_energy`] — capacitor and power-trace models.
//! - [`ehsim_workloads`] — the 23 benchmark kernels.
//! - [`ehsim_hwcost`] — CACTI-lite hardware cost model.
//! - [`ehsim_isa`] — instruction-level frontend (assembler + RISC core).
//! - [`ehsim_analyze`] — trace loading, cross-run diffing, voltage
//!   trajectory export.
//!
//! # Examples
//!
//! ```
//! use wl_cache_repro::prelude::*;
//!
//! let cfg = SimConfig::wl_cache().with_trace(TraceKind::None);
//! let report = Simulator::new(cfg).run(&Sha::small()).unwrap();
//! assert!(report.total_time_ps > 0);
//! ```

pub use ehsim;
pub use ehsim_analyze;
pub use ehsim_cache;
pub use ehsim_energy;
pub use ehsim_hwcost;
pub use ehsim_isa;
pub use ehsim_mem;
pub use ehsim_obs;
pub use ehsim_workloads;
pub use wl_cache;

/// Convenience re-exports for examples and integration tests.
pub mod prelude {
    pub use ehsim::{Report, SimConfig, Simulator};
    pub use ehsim_energy::TraceKind;
    pub use ehsim_mem::{Bus, Workload};
    pub use ehsim_obs::{ObserverBox, RunTrace};
    pub use ehsim_workloads::prelude::*;
}
